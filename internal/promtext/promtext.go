// Package promtext renders the Prometheus text exposition format
// (version 0.0.4) without depending on the client library: nucleusd and
// nucleus-router expose a couple of dozen counters and gauges each, and
// hand-rolling the format keeps the module dependency-free. Only the
// subset the daemons need is implemented — counter and gauge samples
// with optional labels, one HELP/TYPE header per metric name.
package promtext

import (
	"bytes"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Content-Type of the rendered exposition.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Writer accumulates one exposition. The zero value is ready to use.
// Samples of one metric name must be emitted consecutively (the format
// requires it); the convenience methods enforce that naturally because
// each call writes its header (once) and sample together.
type Writer struct {
	buf      bytes.Buffer
	headered map[string]bool
}

// header writes the # HELP / # TYPE preamble for name once.
func (w *Writer) header(name, help, typ string) {
	if w.headered[name] {
		return
	}
	if w.headered == nil {
		w.headered = make(map[string]bool)
	}
	w.headered[name] = true
	w.buf.WriteString("# HELP ")
	w.buf.WriteString(name)
	w.buf.WriteByte(' ')
	w.buf.WriteString(escapeHelp(help))
	w.buf.WriteString("\n# TYPE ")
	w.buf.WriteString(name)
	w.buf.WriteByte(' ')
	w.buf.WriteString(typ)
	w.buf.WriteByte('\n')
}

// sample writes one sample line. Labels are rendered in sorted key
// order so the exposition is deterministic.
func (w *Writer) sample(name string, labels map[string]string, v float64) {
	w.buf.WriteString(name)
	if len(labels) > 0 {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				w.buf.WriteByte(',')
			}
			w.buf.WriteString(k)
			w.buf.WriteString(`="`)
			w.buf.WriteString(escapeLabel(labels[k]))
			w.buf.WriteByte('"')
		}
		w.buf.WriteByte('}')
	}
	w.buf.WriteByte(' ')
	w.buf.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	w.buf.WriteByte('\n')
}

// Counter emits an unlabeled counter sample (with its header on first
// use of the name).
func (w *Writer) Counter(name, help string, v float64) {
	w.header(name, help, "counter")
	w.sample(name, nil, v)
}

// Gauge emits an unlabeled gauge sample.
func (w *Writer) Gauge(name, help string, v float64) {
	w.header(name, help, "gauge")
	w.sample(name, nil, v)
}

// LabeledCounter emits one labeled counter sample. Successive calls
// with the same name share one header.
func (w *Writer) LabeledCounter(name, help string, labels map[string]string, v float64) {
	w.header(name, help, "counter")
	w.sample(name, labels, v)
}

// LabeledGauge emits one labeled gauge sample.
func (w *Writer) LabeledGauge(name, help string, labels map[string]string, v float64) {
	w.header(name, help, "gauge")
	w.sample(name, labels, v)
}

// Bytes returns the rendered exposition.
func (w *Writer) Bytes() []byte { return w.buf.Bytes() }

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a HELP text: backslash and newline (quotes are
// legal there).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
