package cliques

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nucleus/internal/graph"
)

// naiveTriangles enumerates triangles by triple loop.
func naiveTriangles(g *graph.Graph) map[Triangle]bool {
	out := make(map[Triangle]bool)
	n := g.N()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(uint32(u), uint32(v)) {
				continue
			}
			for w := v + 1; w < n; w++ {
				if g.HasEdge(uint32(u), uint32(w)) && g.HasEdge(uint32(v), uint32(w)) {
					out[Triangle{uint32(u), uint32(v), uint32(w)}] = true
				}
			}
		}
	}
	return out
}

func TestCountCompleteGraphs(t *testing.T) {
	// K_n has C(n,3) triangles and C(n,4) 4-cliques.
	cases := []struct {
		n         int
		tri, four int64
	}{
		{3, 1, 0},
		{4, 4, 1},
		{5, 10, 5},
		{6, 20, 15},
		{7, 35, 35},
	}
	for _, c := range cases {
		g := graph.Complete(c.n)
		if got := Count(g); got != c.tri {
			t.Errorf("K%d triangles = %d, want %d", c.n, got, c.tri)
		}
		if got := CountK4(g); got != c.four {
			t.Errorf("K%d 4-cliques = %d, want %d", c.n, got, c.four)
		}
	}
}

func TestCountTriangleFree(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(20), graph.Cycle(20), graph.Star(10), graph.Turan(10, 2)} {
		if got := Count(g); got != 0 {
			t.Errorf("triangle-free graph has %d triangles", got)
		}
	}
}

func TestForEachMatchesNaive(t *testing.T) {
	quickGraphs(t, func(g *graph.Graph) bool {
		want := naiveTriangles(g)
		got := make(map[Triangle]bool)
		ForEach(g, func(tr Triangle) bool {
			if got[tr] {
				t.Errorf("triangle %v emitted twice", tr)
			}
			got[tr] = true
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for tr := range want {
			if !got[tr] {
				return false
			}
		}
		return true
	})
}

func TestCountPerEdgeMatchesNaive(t *testing.T) {
	quickGraphs(t, func(g *graph.Graph) bool {
		counts := CountPerEdge(g)
		want := make([]int32, g.M())
		for tr := range naiveTriangles(g) {
			for _, pair := range [][2]uint32{{tr[0], tr[1]}, {tr[0], tr[2]}, {tr[1], tr[2]}} {
				e, ok := g.EdgeID(pair[0], pair[1])
				if !ok {
					t.Fatalf("triangle edge missing")
				}
				want[e]++
			}
		}
		for e := range counts {
			if counts[e] != want[e] {
				return false
			}
		}
		return true
	})
}

func TestForEachTriangleOfEdge(t *testing.T) {
	g := graph.Complete(5)
	counts := CountPerEdge(g)
	for e := int64(0); e < g.M(); e++ {
		visits := 0
		ForEachTriangleOfEdge(g, e, func(w uint32, euw, evw int64) bool {
			u, v := g.Edge(e)
			// Verify the reported edge ids.
			id1, ok1 := g.EdgeID(u, w)
			id2, ok2 := g.EdgeID(v, w)
			if !ok1 || !ok2 || id1 != euw || id2 != evw {
				t.Fatalf("edge %d apex %d: wrong co-edge ids", e, w)
			}
			visits++
			return true
		})
		if int32(visits) != counts[e] {
			t.Fatalf("edge %d: %d visits, count %d", e, visits, counts[e])
		}
	}
}

func TestForEachTriangleOfEdgeEarlyStop(t *testing.T) {
	g := graph.Complete(6)
	visits := 0
	ForEachTriangleOfEdge(g, 0, func(uint32, int64, int64) bool {
		visits++
		return visits < 2
	})
	if visits != 2 {
		t.Fatalf("early stop ignored: %d visits", visits)
	}
}

func TestTriangleIndex(t *testing.T) {
	g := graph.Complete(5)
	idx := BuildTriangleIndex(g)
	if idx.Len() != 10 {
		t.Fatalf("K5 index has %d triangles, want 10", idx.Len())
	}
	for i, tr := range idx.List {
		id, ok := idx.ID(tr[2], tr[0], tr[1]) // unsorted lookup
		if !ok || id != int32(i) {
			t.Fatalf("lookup of %v = %d,%v", tr, id, ok)
		}
	}
	if _, ok := idx.ID(0, 1, 200); ok {
		t.Error("found nonexistent triangle")
	}
}

func TestK4DegreePerTriangle(t *testing.T) {
	// In K5 every triangle is in exactly 2 four-cliques (two choices of
	// apex among the remaining 2 vertices).
	g := graph.Complete(5)
	idx := BuildTriangleIndex(g)
	for _, d := range idx.K4DegreePerTriangle(g) {
		if d != 2 {
			t.Fatalf("K5 triangle K4-degree = %d, want 2", d)
		}
	}
	// In the (3,4) toy, no 4-clique spans the two blocks.
	toy := graph.Nucleus34Toy()
	tidx := BuildTriangleIndex(toy)
	degs := tidx.K4DegreePerTriangle(toy)
	for i, tr := range tidx.List {
		hasG := tr[0] == 6 || tr[1] == 6 || tr[2] == 6
		if hasG && degs[i] != 0 {
			t.Errorf("triangle %v through pendant g has K4 degree %d", tr, degs[i])
		}
	}
}

func TestForEachK4OfTriangle(t *testing.T) {
	g := graph.Complete(6)
	idx := BuildTriangleIndex(g)
	for tid := range idx.List {
		count := 0
		idx.ForEachK4OfTriangle(g, int32(tid), func(x uint32, t1, t2, t3 int32) bool {
			tri := idx.List[tid]
			for _, other := range []int32{t1, t2, t3} {
				o := idx.List[other]
				// Each co-triangle must contain x and two of tri's vertices.
				hasX := o[0] == x || o[1] == x || o[2] == x
				if !hasX {
					t.Fatalf("co-triangle %v missing apex %d", o, x)
				}
				shared := 0
				for _, a := range o {
					for _, b := range tri {
						if a == b {
							shared++
						}
					}
				}
				if shared != 2 {
					t.Fatalf("co-triangle %v shares %d vertices with %v", o, shared, tri)
				}
			}
			count++
			return true
		})
		if count != 3 { // K6: each triangle in 3 four-cliques
			t.Fatalf("triangle %d in %d K4s, want 3", tid, count)
		}
	}
}

func TestCountK4MatchesNaive(t *testing.T) {
	quickGraphs(t, func(g *graph.Graph) bool {
		return CountK4(g) == naiveK4(g)
	})
}

func naiveK4(g *graph.Graph) int64 {
	var total int64
	n := g.N()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !g.HasEdge(uint32(a), uint32(b)) {
				continue
			}
			for c := b + 1; c < n; c++ {
				if !g.HasEdge(uint32(a), uint32(c)) || !g.HasEdge(uint32(b), uint32(c)) {
					continue
				}
				for d := c + 1; d < n; d++ {
					if g.HasEdge(uint32(a), uint32(d)) && g.HasEdge(uint32(b), uint32(d)) && g.HasEdge(uint32(c), uint32(d)) {
						total++
					}
				}
			}
		}
	}
	return total
}

func TestForEachKCliqueCounts(t *testing.T) {
	// K6: C(6,k) cliques of size k.
	g := graph.Complete(6)
	want := map[int]int64{1: 6, 2: 15, 3: 20, 4: 15, 5: 6, 6: 1}
	for k, w := range want {
		if got := CountKCliques(g, k); got != w {
			t.Errorf("K6 %d-cliques = %d, want %d", k, got, w)
		}
	}
	if got := CountKCliques(g, 7); got != 0 {
		t.Errorf("K6 7-cliques = %d, want 0", got)
	}
}

func TestForEachKCliqueMatchesTriangles(t *testing.T) {
	quickGraphs(t, func(g *graph.Graph) bool {
		return CountKCliques(g, 3) == Count(g) && CountKCliques(g, 4) == CountK4(g) && CountKCliques(g, 2) == g.M()
	})
}

func TestForEachKCliqueMembersSorted(t *testing.T) {
	g := graph.GnM(30, 120, 3)
	ForEachKClique(g, 3, func(members []uint32) bool {
		if len(members) != 3 || members[0] >= members[1] || members[1] >= members[2] {
			t.Fatalf("bad members %v", members)
		}
		// All pairs adjacent.
		if !g.HasEdge(members[0], members[1]) || !g.HasEdge(members[0], members[2]) || !g.HasEdge(members[1], members[2]) {
			t.Fatalf("non-clique %v", members)
		}
		return true
	})
}

func TestForEachKCliqueEarlyStop(t *testing.T) {
	g := graph.Complete(8)
	count := 0
	ForEachKClique(g, 3, func([]uint32) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop ignored: %d", count)
	}
}

func quickGraphs(t *testing.T, pred func(*graph.Graph) bool) {
	t.Helper()
	err := quick.Check(func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%25) + 4
		m := int(mRaw%120) + 1
		maxM := n * (n - 1) / 2
		if m > maxM {
			m = maxM
		}
		return pred(graph.GnM(n, m, seed))
	}, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
}
