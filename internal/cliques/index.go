package cliques

import (
	"nucleus/internal/graph"
)

// TriangleIndex assigns dense ids to every triangle of a graph and supports
// id lookup by vertex triple. It is the cell index for the (3,4) nucleus
// decomposition.
type TriangleIndex struct {
	// List holds triangles by id, each sorted ascending.
	List  []Triangle
	byKey map[Triangle]int32
}

// BuildTriangleIndex enumerates all triangles and indexes them. It is
// BuildTriangleIndexThreads with a single thread.
func BuildTriangleIndex(g *graph.Graph) *TriangleIndex {
	return BuildTriangleIndexThreads(g, 1)
}

// BuildTriangleIndexThreads is BuildTriangleIndex with the enumeration
// fanned out across threads. Triangle ids are bit-identical at every thread
// count: the list comes from the chunk-ordered parallel enumeration, which
// reproduces ForEach's sequential order, and ids are positions in it. Only
// the map insert loop stays serial.
func BuildTriangleIndexThreads(g *graph.Graph, threads int) *TriangleIndex {
	list := Triangles(g, threads)
	idx := &TriangleIndex{List: list, byKey: make(map[Triangle]int32, len(list))}
	for i, t := range list {
		idx.byKey[t] = int32(i)
	}
	return idx
}

// Len returns the number of triangles.
func (ti *TriangleIndex) Len() int { return len(ti.List) }

// ID returns the dense id of the triangle on vertices {a,b,c}, which need
// not be sorted.
func (ti *TriangleIndex) ID(a, b, c uint32) (int32, bool) {
	id, ok := ti.byKey[sortedTriple(a, b, c)]
	return id, ok
}

// ForEachK4OfTriangle calls fn for every 4-clique containing triangle t,
// passing the apex vertex x and the ids of the three other triangles of the
// 4-clique: {u,v,x}, {u,w,x}, {v,w,x}. Iteration stops if fn returns false.
func (ti *TriangleIndex) ForEachK4OfTriangle(g *graph.Graph, t int32, fn func(x uint32, t1, t2, t3 int32) bool) {
	tri := ti.List[t]
	u, v, w := tri[0], tri[1], tri[2]
	commonNeighbors3(g, u, v, w, func(x uint32) bool {
		t1, ok1 := ti.ID(u, v, x)
		t2, ok2 := ti.ID(u, w, x)
		t3, ok3 := ti.ID(v, w, x)
		if !ok1 || !ok2 || !ok3 {
			// Cannot happen on a consistent index: x adjacent to all of
			// u,v,w implies the three triangles exist.
			panic("cliques: inconsistent triangle index")
		}
		return fn(x, t1, t2, t3)
	})
}

// K4DegreePerTriangle returns the number of 4-cliques containing each
// triangle, indexed by triangle id.
func (ti *TriangleIndex) K4DegreePerTriangle(g *graph.Graph) []int32 {
	return ti.K4DegreePerTriangleParallel(g, 1)
}

// K4DegreePerTriangleParallel is K4DegreePerTriangle with the triangle
// rows split across the given number of workers: the per-cell degree
// initialization of the (3,4) instance is embarrassingly parallel (each
// triangle's count is written by exactly one worker), mirroring
// CountPerEdgeParallel for the (2,3) instance.
func (ti *TriangleIndex) K4DegreePerTriangleParallel(g *graph.Graph, threads int) []int32 {
	deg := make([]int32, ti.Len())
	parallelVertexRanges(ti.Len(), threads, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			tri := ti.List[t]
			c := 0
			commonNeighbors3(g, tri[0], tri[1], tri[2], func(uint32) bool {
				c++
				return true
			})
			deg[t] = int32(c)
		}
	})
	return deg
}

// CountK4 returns the total number of 4-cliques (each counted once).
func CountK4(g *graph.Graph) int64 {
	var total int64
	ti := BuildTriangleIndex(g)
	for t := range ti.List {
		tri := ti.List[t]
		// Count apexes x greater than the max vertex of the triangle so
		// each K4 is counted exactly once, from its lexicographically
		// smallest triangle.
		commonNeighbors3(g, tri[0], tri[1], tri[2], func(x uint32) bool {
			if x > tri[2] {
				total++
			}
			return true
		})
	}
	return total
}

// commonNeighbors3 visits every vertex adjacent to all of u, v and w, in
// increasing id order.
func commonNeighbors3(g *graph.Graph, u, v, w uint32, fn func(x uint32) bool) {
	a, b, c := g.Neighbors(u), g.Neighbors(v), g.Neighbors(w)
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) && k < len(c) {
		x := a[i]
		if b[j] > x {
			x = b[j]
		}
		if c[k] > x {
			x = c[k]
		}
		for i < len(a) && a[i] < x {
			i++
		}
		for j < len(b) && b[j] < x {
			j++
		}
		for k < len(c) && c[k] < x {
			k++
		}
		if i < len(a) && j < len(b) && k < len(c) && a[i] == x && b[j] == x && c[k] == x {
			if !fn(x) {
				return
			}
			i++
			j++
			k++
		}
	}
}
