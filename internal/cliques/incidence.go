package cliques

import (
	"math"
	"sync"

	"nucleus/internal/graph"
)

// This file materializes the s-clique incidence of the (2,3) and (3,4)
// decompositions as flat CSR arrays: per cell, the co-member cell ids of
// every s-clique containing it, stored contiguously. The on-the-fly
// instances re-discover every triangle / 4-clique by sorted-merge
// intersection on every sweep of the local algorithms; the flat index pays
// that discovery cost exactly once and turns each subsequent sweep into a
// pure array scan. The trade-off is the paper's §5 memory stance: the
// index stores every s-clique membership, so callers must check the
// *Bytes estimate against a budget before building (package nucleus's
// Build does).

// EdgeIncidence is the flat triangle incidence of a graph's edges: for
// edge e, Pairs[Offs[e]:Offs[e+1]] holds, per triangle containing e, the
// dense ids of the triangle's two other edges (the co-member cells of the
// (2,3) decomposition), two int32 entries per triangle.
type EdgeIncidence struct {
	// Offs has length M+1, in units of int32 entries of Pairs.
	Offs []int64
	// Pairs holds the concatenated co-member edge-id pairs.
	Pairs []int32
}

// Bytes returns the memory held by the index arrays.
func (inc *EdgeIncidence) Bytes() int64 {
	return 8*int64(len(inc.Offs)) + 4*int64(len(inc.Pairs))
}

// EdgeIncidenceBytes estimates the memory of an EdgeIncidence for a graph
// with m edges whose per-edge triangle counts sum to sumDeg (= 3·|triangles|):
// an int64 offset per edge plus two int32 co-member ids per incidence.
func EdgeIncidenceBytes(m, sumDeg int64) int64 {
	return 8*(m+1) + 8*sumDeg
}

// BuildEdgeIncidence builds the flat triangle incidence with the classic
// two-pass CSR construction: count (the caller usually already has the
// per-edge triangle counts — pass them as deg, or nil to recount), prefix
// sum, then a parallel fill. Each edge's row is written exactly once, by
// the worker owning the edge's lower endpoint, so workers never contend.
// Panics if the graph has more than MaxInt32 edges (cell ids are int32).
func BuildEdgeIncidence(g *graph.Graph, deg []int32, threads int) *EdgeIncidence {
	if g.M() > math.MaxInt32 {
		panic("cliques: graph too large for int32 edge cells")
	}
	if deg == nil {
		deg = CountPerEdgeParallel(g, threads)
	}
	m := g.M()
	inc := &EdgeIncidence{Offs: make([]int64, m+1)}
	for e := int64(0); e < m; e++ {
		inc.Offs[e+1] = inc.Offs[e] + 2*int64(deg[e])
	}
	inc.Pairs = make([]int32, inc.Offs[m])

	parallelVertexRanges(g.N(), threads, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			uu := uint32(u)
			ns := g.Neighbors(uu)
			eids := g.EdgeIDs(uu)
			for i, v := range ns {
				if v <= uu {
					continue
				}
				// Merge N(u) and N(v); every common neighbor w closes the
				// triangle {u,v,w}, whose co-member edges are {u,w} (id on
				// u's row) and {v,w} (id on v's row) — the same order
				// ForEachTriangleOfEdge emits.
				pos := inc.Offs[eids[i]]
				nv := g.Neighbors(v)
				ev := g.EdgeIDs(v)
				x, y := 0, 0
				for x < len(ns) && y < len(nv) {
					switch {
					case ns[x] < nv[y]:
						x++
					case ns[x] > nv[y]:
						y++
					default:
						inc.Pairs[pos] = int32(eids[x])
						inc.Pairs[pos+1] = int32(ev[y])
						pos += 2
						x++
						y++
					}
				}
			}
		}
	})
	return inc
}

// K4Incidence is the flat 4-clique incidence of a graph's triangles: for
// triangle t, Triples[Offs[t]:Offs[t+1]] holds, per 4-clique containing t,
// the dense ids of the 4-clique's three other triangles (the co-member
// cells of the (3,4) decomposition), three int32 entries per 4-clique.
type K4Incidence struct {
	// Offs has length |triangles|+1, in units of int32 entries of Triples.
	Offs []int64
	// Triples holds the concatenated co-member triangle-id triples.
	Triples []int32
}

// Bytes returns the memory held by the index arrays.
func (inc *K4Incidence) Bytes() int64 {
	return 8*int64(len(inc.Offs)) + 4*int64(len(inc.Triples))
}

// K4IncidenceBytes estimates the memory of a K4Incidence for t triangles
// whose per-triangle 4-clique counts sum to sumDeg (= 4·|K4|): an int64
// offset per triangle plus three int32 co-member ids per incidence.
func K4IncidenceBytes(t, sumDeg int64) int64 {
	return 8*(t+1) + 12*sumDeg
}

// BuildK4Incidence builds the flat 4-clique incidence over an existing
// triangle index: count (pass the per-triangle 4-clique degrees as deg, or
// nil to recount), prefix sum, parallel fill. Each triangle's row is
// written exactly once by the worker owning the triangle, so workers never
// contend. The triangle-id lookups that the on-the-fly instance pays on
// every sweep are paid here once, at build time.
func BuildK4Incidence(g *graph.Graph, ti *TriangleIndex, deg []int32, threads int) *K4Incidence {
	if deg == nil {
		deg = ti.K4DegreePerTriangleParallel(g, threads)
	}
	t := int64(ti.Len())
	inc := &K4Incidence{Offs: make([]int64, t+1)}
	for i := int64(0); i < t; i++ {
		inc.Offs[i+1] = inc.Offs[i] + 3*int64(deg[i])
	}
	inc.Triples = make([]int32, inc.Offs[t])

	parallelVertexRanges(ti.Len(), threads, func(lo, hi int) {
		for tr := lo; tr < hi; tr++ {
			pos := inc.Offs[tr]
			ti.ForEachK4OfTriangle(g, int32(tr), func(_ uint32, t1, t2, t3 int32) bool {
				inc.Triples[pos] = t1
				inc.Triples[pos+1] = t2
				inc.Triples[pos+2] = t3
				pos += 3
				return true
			})
		}
	})
	return inc
}

// parallelVertexRanges splits [0,n) into one contiguous chunk per worker
// and runs body on each; sequential when threads <= 1.
func parallelVertexRanges(n, threads int, body func(lo, hi int)) {
	if threads <= 1 || n == 0 {
		body(0, n)
		return
	}
	if threads > n {
		threads = n
	}
	chunk := (n + threads - 1) / threads
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
