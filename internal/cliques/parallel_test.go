package cliques

import (
	"testing"

	"nucleus/internal/graph"
)

func TestCountPerEdgeParallelMatches(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Complete(8),
		graph.PowerLawCluster(500, 5, 0.5, 73),
		graph.RMAT(10, 8, 0.57, 0.19, 0.19, 75),
		graph.Path(10),
		graph.Build(0, nil),
	} {
		want := CountPerEdge(g)
		for _, threads := range []int{1, 2, 3, 8, 100} {
			got := CountPerEdgeParallel(g, threads)
			if len(got) != len(want) {
				t.Fatalf("threads=%d: length mismatch", threads)
			}
			for e := range want {
				if got[e] != want[e] {
					t.Fatalf("threads=%d edge %d: %d vs %d", threads, e, got[e], want[e])
				}
			}
		}
	}
}

func BenchmarkCountPerEdgeParallel4(b *testing.B) {
	g := graph.PlantedCommunities(20, 80, 0.35, 1500, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountPerEdgeParallel(g, 4)
	}
}
