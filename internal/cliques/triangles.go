// Package cliques provides triangle and k-clique counting, enumeration and
// indexing on top of the graph package. These are the substrate for the
// (2,3) (k-truss) and (3,4) nucleus decompositions: edges are the cells of
// the former with triangles as their s-cliques, and triangles are the cells
// of the latter with 4-cliques as their s-cliques.
package cliques

import (
	"nucleus/internal/graph"
	"nucleus/internal/par"
)

// Triangle is a vertex triple sorted ascending.
type Triangle [3]uint32

// CountPerEdge returns the number of triangles containing each edge,
// indexed by dense edge id. It intersects sorted adjacency lists along the
// lower-degree endpoint of each edge.
func CountPerEdge(g *graph.Graph) []int32 {
	counts := make([]int32, g.M())
	n := g.N()
	for u := 0; u < n; u++ {
		uu := uint32(u)
		ns := g.Neighbors(uu)
		eids := g.EdgeIDs(uu)
		for i, v := range ns {
			if v <= uu {
				continue
			}
			e := eids[i]
			// Count common neighbors w with w > v to count each triangle
			// once per edge... each triangle {u,v,w} must increment all
			// three of its edges, so instead count all common neighbors and
			// rely on visiting each edge exactly once from its lower
			// endpoint: common(u,v) counts triangles through edge {u,v}
			// regardless of w's position.
			counts[e] = int32(intersectCount(ns, g.Neighbors(v)))
		}
	}
	return counts
}

// CountPerEdgeParallel is CountPerEdge with the per-vertex rows split
// across the given number of workers. This is the parallelizable degree
// initialization of the "partially parallel peeling" baseline (Figure 1b's
// Peeling-24t): counting is embarrassingly parallel even though the
// peeling loop itself is not.
func CountPerEdgeParallel(g *graph.Graph, threads int) []int32 {
	if threads <= 1 {
		return CountPerEdge(g)
	}
	counts := make([]int32, g.M())
	parallelVertexRanges(g.N(), threads, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			uu := uint32(u)
			ns := g.Neighbors(uu)
			eids := g.EdgeIDs(uu)
			for i, v := range ns {
				if v <= uu {
					continue
				}
				// Each edge is owned by its lower endpoint, so writes to
				// counts are disjoint across workers.
				counts[eids[i]] = int32(intersectCount(ns, g.Neighbors(v)))
			}
		}
	})
	return counts
}

// intersectCount returns |a ∩ b| for sorted slices.
func intersectCount(a, b []uint32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// ForEachTriangleOfEdge calls fn for every triangle containing edge e =
// {u,v}, passing the apex vertex w and the dense ids of the two other edges
// {u,w} and {v,w}. Iteration stops early if fn returns false.
func ForEachTriangleOfEdge(g *graph.Graph, e int64, fn func(w uint32, euw, evw int64) bool) {
	u, v := g.Edge(e)
	nu, nv := g.Neighbors(u), g.Neighbors(v)
	eu, ev := g.EdgeIDs(u), g.EdgeIDs(v)
	i, j := 0, 0
	for i < len(nu) && j < len(nv) {
		switch {
		case nu[i] < nv[j]:
			i++
		case nu[i] > nv[j]:
			j++
		default:
			if !fn(nu[i], eu[i], ev[j]) {
				return
			}
			i++
			j++
		}
	}
}

// Count returns the total number of triangles using a degeneracy-oriented
// enumeration (each triangle counted exactly once).
func Count(g *graph.Graph) int64 {
	var total int64
	ForEach(g, func(Triangle) bool {
		total++
		return true
	})
	return total
}

// ForEach enumerates every triangle exactly once, sorted ascending within
// the triple, using the degree orientation (edges point from lower to
// higher (degree, id) rank). Iteration stops early if fn returns false.
func ForEach(g *graph.Graph, fn func(Triangle) bool) {
	rank := g.DegreeOrder()
	n := g.N()
	// out[u] = oriented out-neighbors of u, sorted by vertex id.
	out := orientedAdjacency(g, rank, 1)
	for u := 0; u < n; u++ {
		if !trianglesOfRoot(out, u, fn) {
			return
		}
	}
}

// Triangles returns every triangle exactly once, in the exact order ForEach
// emits them, with the enumeration fanned out across threads by root
// vertex. The chunk-ordered gather keeps the list bit-identical to the
// sequential enumeration at every thread count, which is what makes the
// triangle ids handed out by BuildTriangleIndexThreads deterministic.
func Triangles(g *graph.Graph, threads int) []Triangle {
	rank := g.DegreeOrder()
	out := orientedAdjacency(g, rank, threads)
	return par.Collect(g.N(), 64, threads, func(u int, buf []Triangle) []Triangle {
		trianglesOfRoot(out, u, func(t Triangle) bool {
			buf = append(buf, t)
			return true
		})
		return buf
	})
}

// trianglesOfRoot emits the triangles whose lowest-rank vertex is u:
// intersect out(u) with out(v) for each v in out(u) — every common w closes
// a triangle {u,v,w} with rank(u) < rank(v) < rank(w), so each triangle is
// emitted exactly once across roots. Returns false if fn stopped.
func trianglesOfRoot(out [][]uint32, u int, fn func(Triangle) bool) bool {
	ou := out[u]
	for _, v := range ou {
		ov := out[v]
		x, y := 0, 0
		for x < len(ou) && y < len(ov) {
			switch {
			case ou[x] < ov[y]:
				x++
			case ou[x] > ov[y]:
				y++
			default:
				if !fn(sortedTriple(uint32(u), v, ou[x])) {
					return false
				}
				x++
				y++
			}
		}
	}
	return true
}

// orientedAdjacency returns, for each vertex, its neighbors of higher rank,
// sorted by vertex id. Rows are independent, so both the sizing and fill
// passes shard across threads.
func orientedAdjacency(g *graph.Graph, rank []int32, threads int) [][]uint32 {
	n := g.N()
	out := make([][]uint32, n)
	par.ForEach(n, 256, threads, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			size := 0
			for _, v := range g.Neighbors(uint32(u)) {
				if rank[v] > rank[u] {
					size++
				}
			}
			row := make([]uint32, 0, size)
			for _, v := range g.Neighbors(uint32(u)) {
				if rank[v] > rank[u] {
					row = append(row, v)
				}
			}
			// Neighbors are id-sorted already, and we preserved order.
			out[u] = row
		}
	})
	return out
}

func sortedTriple(a, b, c uint32) Triangle {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return Triangle{a, b, c}
}
