package cliques

import (
	"nucleus/internal/graph"
)

// ForEachKClique enumerates every k-clique exactly once (k >= 1), calling fn
// with the member vertices sorted ascending. The slice passed to fn is
// reused between calls; copy it if retained. Enumeration recurses over the
// degeneracy orientation, so it is output-sensitive and practical for the
// small-to-medium graphs the generic (r,s) machinery targets.
func ForEachKClique(g *graph.Graph, k int, fn func(members []uint32) bool) {
	if k < 1 {
		return
	}
	n := g.N()
	if k == 1 {
		buf := make([]uint32, 1)
		for u := 0; u < n; u++ {
			buf[0] = uint32(u)
			if !fn(buf) {
				return
			}
		}
		return
	}
	rank, _ := g.DegeneracyOrder()
	// Oriented adjacency sorted by rank: with candidates kept in rank order,
	// every later candidate has higher rank than the current pick v, so the
	// candidates adjacent to v are exactly those in out[v].
	out := orientedAdjacencyRankSorted(g, rank)
	clique := make([]uint32, 0, k)
	stopped := false

	// extend grows the current clique using cand: vertices adjacent (in the
	// orientation) to every current member.
	var extend func(cand []uint32)
	extend = func(cand []uint32) {
		if stopped {
			return
		}
		if len(clique) == k {
			sorted := append([]uint32(nil), clique...)
			insertionSort(sorted)
			if !fn(sorted) {
				stopped = true
			}
			return
		}
		need := k - len(clique)
		for i := 0; i+need <= len(cand); i++ {
			v := cand[i]
			clique = append(clique, v)
			if need == 1 {
				sorted := append([]uint32(nil), clique...)
				insertionSort(sorted)
				if !fn(sorted) {
					stopped = true
				}
			} else {
				next := intersectByRank(cand[i+1:], out[v], rank)
				extend(next)
			}
			clique = clique[:len(clique)-1]
			if stopped {
				return
			}
		}
	}

	for u := 0; u < n && !stopped; u++ {
		clique = append(clique[:0], uint32(u))
		extend(out[u])
	}
}

// CountKCliques returns the number of k-cliques.
func CountKCliques(g *graph.Graph, k int) int64 {
	var total int64
	ForEachKClique(g, k, func([]uint32) bool {
		total++
		return true
	})
	return total
}

// orientedAdjacencyRankSorted returns, for each vertex, its higher-rank
// neighbors sorted by rank.
func orientedAdjacencyRankSorted(g *graph.Graph, rank []int32) [][]uint32 {
	n := g.N()
	out := make([][]uint32, n)
	for u := 0; u < n; u++ {
		var row []uint32
		for _, v := range g.Neighbors(uint32(u)) {
			if rank[v] > rank[u] {
				row = append(row, v)
			}
		}
		// Sort by rank (insertion sort on rank keys; rows are short).
		for i := 1; i < len(row); i++ {
			for j := i; j > 0 && rank[row[j]] < rank[row[j-1]]; j-- {
				row[j], row[j-1] = row[j-1], row[j]
			}
		}
		out[u] = row
	}
	return out
}

// intersectByRank returns a ∩ b for slices sorted by rank.
func intersectByRank(a, b []uint32, rank []int32) []uint32 {
	out := make([]uint32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case rank[a[i]] < rank[b[j]]:
			i++
		case rank[a[i]] > rank[b[j]]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func insertionSort(a []uint32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
