package cliques

import (
	"sync"

	"nucleus/internal/graph"
	"nucleus/internal/par"
)

// kcliqueEnum is the shared read-only state of a k-clique enumeration: the
// degeneracy rank and the rank-sorted oriented adjacency. Roots are
// independent given this state, which is what lets KCliquesFlat fan the
// recursion out across threads.
type kcliqueEnum struct {
	k    int
	rank []int32
	// Oriented adjacency sorted by rank: with candidates kept in rank order,
	// every later candidate has higher rank than the current pick v, so the
	// candidates adjacent to v are exactly those in out[v].
	out [][]uint32
}

func newKCliqueEnum(g *graph.Graph, k, threads int) *kcliqueEnum {
	rank, _ := g.DegeneracyOrder()
	return &kcliqueEnum{k: k, rank: rank, out: orientedAdjacencyRankSorted(g, rank, threads)}
}

// visitRoot calls fn with every k-clique whose lowest-rank vertex is u, in
// the fixed recursion order over the orientation. clique (cap >= k) and
// sorted (len k) are caller scratch reused across roots; the slice passed
// to fn is sorted ascending and reused between calls. Returns false if fn
// stopped the enumeration.
func (e *kcliqueEnum) visitRoot(u uint32, clique, sorted []uint32, fn func(members []uint32) bool) bool {
	k := e.k
	if k == 1 {
		sorted[0] = u
		return fn(sorted)
	}
	clique = append(clique[:0], u)
	stopped := false
	// extend grows the current clique using cand: vertices adjacent (in the
	// orientation) to every current member.
	var extend func(cand []uint32)
	extend = func(cand []uint32) {
		need := k - len(clique)
		for i := 0; i+need <= len(cand); i++ {
			v := cand[i]
			clique = append(clique, v)
			if need == 1 {
				copy(sorted, clique)
				insertionSort(sorted)
				if !fn(sorted) {
					stopped = true
				}
			} else {
				extend(intersectByRank(cand[i+1:], e.out[v], e.rank))
			}
			clique = clique[:len(clique)-1]
			if stopped {
				return
			}
		}
	}
	extend(e.out[u])
	return !stopped
}

// ForEachKClique enumerates every k-clique exactly once (k >= 1), calling fn
// with the member vertices sorted ascending. The slice passed to fn is
// reused between calls; copy it if retained. Enumeration recurses over the
// degeneracy orientation, so it is output-sensitive and practical for the
// small-to-medium graphs the generic (r,s) machinery targets.
func ForEachKClique(g *graph.Graph, k int, fn func(members []uint32) bool) {
	if k < 1 {
		return
	}
	n := g.N()
	e := newKCliqueEnum(g, k, 1)
	clique := make([]uint32, 0, k)
	sorted := make([]uint32, k)
	for u := 0; u < n; u++ {
		if !e.visitRoot(uint32(u), clique, sorted, fn) {
			return
		}
	}
}

// KCliquesFlat enumerates every k-clique and returns the members flat — k
// sorted vertices per clique — in the exact order ForEachKClique emits
// them, with the recursion fanned out across threads by root vertex. The
// chunk-ordered gather makes the list (and hence any dense clique ids
// assigned from it) bit-identical at every thread count.
func KCliquesFlat(g *graph.Graph, k, threads int) []uint32 {
	if k < 1 {
		return nil
	}
	n := g.N()
	if k == 1 {
		out := make([]uint32, n)
		par.ForEach(n, 4096, threads, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				out[u] = uint32(u)
			}
		})
		return out
	}
	e := newKCliqueEnum(g, k, threads)
	type scratch struct{ clique, sorted []uint32 }
	pool := sync.Pool{New: func() any {
		return &scratch{clique: make([]uint32, 0, k), sorted: make([]uint32, k)}
	}}
	return par.Collect(n, 64, threads, func(u int, buf []uint32) []uint32 {
		s := pool.Get().(*scratch)
		e.visitRoot(uint32(u), s.clique, s.sorted, func(members []uint32) bool {
			buf = append(buf, members...)
			return true
		})
		pool.Put(s)
		return buf
	})
}

// CountKCliques returns the number of k-cliques.
func CountKCliques(g *graph.Graph, k int) int64 {
	var total int64
	ForEachKClique(g, k, func([]uint32) bool {
		total++
		return true
	})
	return total
}

// orientedAdjacencyRankSorted returns, for each vertex, its higher-rank
// neighbors sorted by rank. Rows are independent, so the pass shards
// across threads.
func orientedAdjacencyRankSorted(g *graph.Graph, rank []int32, threads int) [][]uint32 {
	n := g.N()
	out := make([][]uint32, n)
	par.ForEach(n, 256, threads, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			var row []uint32
			for _, v := range g.Neighbors(uint32(u)) {
				if rank[v] > rank[u] {
					row = append(row, v)
				}
			}
			// Sort by rank (insertion sort on rank keys; rows are short).
			for i := 1; i < len(row); i++ {
				for j := i; j > 0 && rank[row[j]] < rank[row[j-1]]; j-- {
					row[j], row[j-1] = row[j-1], row[j]
				}
			}
			out[u] = row
		}
	})
	return out
}

// intersectByRank returns a ∩ b for slices sorted by rank.
func intersectByRank(a, b []uint32, rank []int32) []uint32 {
	out := make([]uint32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case rank[a[i]] < rank[b[j]]:
			i++
		case rank[a[i]] > rank[b[j]]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func insertionSort(a []uint32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
