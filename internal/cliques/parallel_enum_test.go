package cliques

import (
	"testing"

	"nucleus/internal/graph"
)

func enumFamilies() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"complete":           graph.Complete(9),
		"cliqueChain":        graph.CliqueChain(4, 6),
		"gnm":                graph.GnM(150, 700, 1),
		"barabasiAlbert":     graph.BarabasiAlbert(120, 6, 2),
		"rmat":               graph.RMAT(7, 4, 0.45, 0.22, 0.22, 3),
		"wattsStrogatz":      graph.WattsStrogatz(120, 6, 0.1, 4),
		"plantedCommunities": graph.PlantedCommunities(4, 15, 0.5, 40, 5),
		"powerLawCluster":    graph.PowerLawCluster(130, 5, 0.4, 6),
	}
}

// TestTrianglesParallelBitIdentical proves the parallel triangle
// enumeration emits the exact sequence ForEach does — and hence that
// BuildTriangleIndexThreads assigns identical triangle ids — at every
// thread count.
func TestTrianglesParallelBitIdentical(t *testing.T) {
	for name, g := range enumFamilies() {
		var want []Triangle
		ForEach(g, func(tr Triangle) bool {
			want = append(want, tr)
			return true
		})
		for _, threads := range []int{1, 2, 4, 8} {
			got := Triangles(g, threads)
			if len(got) != len(want) {
				t.Fatalf("%s threads=%d: %d triangles, want %d", name, threads, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s threads=%d: triangle %d = %v, want %v", name, threads, i, got[i], want[i])
				}
			}
			idx := BuildTriangleIndexThreads(g, threads)
			for i, tr := range want {
				if id, ok := idx.ID(tr[0], tr[1], tr[2]); !ok || id != int32(i) {
					t.Fatalf("%s threads=%d: id(%v) = %d/%v, want %d", name, threads, tr, id, ok, i)
				}
			}
		}
	}
}

// TestKCliquesFlatBitIdentical proves the parallel k-clique enumeration
// reproduces ForEachKClique's emission order at every thread count, for
// the arities the generic (r,s) path uses.
func TestKCliquesFlatBitIdentical(t *testing.T) {
	for name, g := range enumFamilies() {
		for k := 1; k <= 5; k++ {
			var want []uint32
			ForEachKClique(g, k, func(members []uint32) bool {
				want = append(want, members...)
				return true
			})
			for _, threads := range []int{1, 2, 4, 8} {
				got := KCliquesFlat(g, k, threads)
				if len(got) != len(want) {
					t.Fatalf("%s k=%d threads=%d: %d vertices, want %d", name, k, threads, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s k=%d threads=%d: flat[%d] = %d, want %d", name, k, threads, i, got[i], want[i])
					}
				}
			}
		}
	}
}
