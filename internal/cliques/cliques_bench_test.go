package cliques

import (
	"testing"

	"nucleus/internal/graph"
)

func benchGraph() *graph.Graph {
	return graph.PlantedCommunities(20, 80, 0.35, 1500, 42)
}

func BenchmarkCountPerEdge(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountPerEdge(g)
	}
}

func BenchmarkTriangleEnumeration(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		total = Count(g)
	}
	b.ReportMetric(float64(total), "triangles")
}

func BenchmarkBuildTriangleIndex(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildTriangleIndex(g)
	}
}

func BenchmarkK4DegreePerTriangle(b *testing.B) {
	g := benchGraph()
	idx := BuildTriangleIndex(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.K4DegreePerTriangle(g)
	}
}

func BenchmarkForEachTriangleOfEdge(b *testing.B) {
	g := benchGraph()
	m := g.M()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForEachTriangleOfEdge(g, int64(i)%m, func(uint32, int64, int64) bool { return true })
	}
}

func BenchmarkCountKCliques5(b *testing.B) {
	g := graph.PlantedCommunities(4, 30, 0.5, 50, 9)
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		total = CountKCliques(g, 5)
	}
	b.ReportMetric(float64(total), "5-cliques")
}
