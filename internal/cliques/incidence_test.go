package cliques

import (
	"testing"

	"nucleus/internal/graph"
)

func incidenceTestGraphs() []*graph.Graph {
	return []*graph.Graph{
		graph.Complete(8),
		graph.PlantedCommunities(4, 16, 0.5, 40, 3),
		graph.PowerLawCluster(400, 5, 0.5, 73),
		graph.RMAT(9, 6, 0.57, 0.19, 0.19, 75),
		graph.GnM(200, 800, 17),
		graph.Path(10),
		graph.Build(0, nil),
	}
}

// TestEdgeIncidenceMatchesOnTheFly checks that, for every edge, the flat
// row reproduces exactly the (euw, evw) pairs ForEachTriangleOfEdge
// discovers, in the same order.
func TestEdgeIncidenceMatchesOnTheFly(t *testing.T) {
	for gi, g := range incidenceTestGraphs() {
		inc := BuildEdgeIncidence(g, nil, 1)
		if len(inc.Offs) != int(g.M())+1 {
			t.Fatalf("graph %d: offs length %d, want %d", gi, len(inc.Offs), g.M()+1)
		}
		for e := int64(0); e < g.M(); e++ {
			var want []int32
			ForEachTriangleOfEdge(g, e, func(_ uint32, euw, evw int64) bool {
				want = append(want, int32(euw), int32(evw))
				return true
			})
			got := inc.Pairs[inc.Offs[e]:inc.Offs[e+1]]
			if len(got) != len(want) {
				t.Fatalf("graph %d edge %d: row length %d, want %d", gi, e, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("graph %d edge %d entry %d: %d, want %d", gi, e, i, got[i], want[i])
				}
			}
		}
	}
}

// TestK4IncidenceMatchesOnTheFly checks the flat 4-clique rows against
// ForEachK4OfTriangle.
func TestK4IncidenceMatchesOnTheFly(t *testing.T) {
	for gi, g := range incidenceTestGraphs() {
		ti := BuildTriangleIndex(g)
		inc := BuildK4Incidence(g, ti, nil, 1)
		if len(inc.Offs) != ti.Len()+1 {
			t.Fatalf("graph %d: offs length %d, want %d", gi, len(inc.Offs), ti.Len()+1)
		}
		for tr := 0; tr < ti.Len(); tr++ {
			var want []int32
			ti.ForEachK4OfTriangle(g, int32(tr), func(_ uint32, t1, t2, t3 int32) bool {
				want = append(want, t1, t2, t3)
				return true
			})
			got := inc.Triples[inc.Offs[tr]:inc.Offs[tr+1]]
			if len(got) != len(want) {
				t.Fatalf("graph %d triangle %d: row length %d, want %d", gi, tr, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("graph %d triangle %d entry %d: %d, want %d", gi, tr, i, got[i], want[i])
				}
			}
		}
	}
}

// TestIncidenceParallelMatchesSequential exercises the parallel fill paths
// (rows are written by disjoint workers, so the result must be identical
// bit for bit; run under -race this also proves the builders are
// data-race-free).
func TestIncidenceParallelMatchesSequential(t *testing.T) {
	for gi, g := range incidenceTestGraphs() {
		seqE := BuildEdgeIncidence(g, nil, 1)
		ti := BuildTriangleIndex(g)
		seqK := BuildK4Incidence(g, ti, nil, 1)
		for _, threads := range []int{2, 3, 8, 100} {
			parE := BuildEdgeIncidence(g, nil, threads)
			if !int64sEqual(seqE.Offs, parE.Offs) || !int32sEqual(seqE.Pairs, parE.Pairs) {
				t.Fatalf("graph %d threads %d: edge incidence differs from sequential", gi, threads)
			}
			parK := BuildK4Incidence(g, ti, nil, threads)
			if !int64sEqual(seqK.Offs, parK.Offs) || !int32sEqual(seqK.Triples, parK.Triples) {
				t.Fatalf("graph %d threads %d: K4 incidence differs from sequential", gi, threads)
			}
		}
	}
}

// TestK4DegreeParallelMatches checks the parallel degree initialization
// against the sequential one.
func TestK4DegreeParallelMatches(t *testing.T) {
	for gi, g := range incidenceTestGraphs() {
		ti := BuildTriangleIndex(g)
		want := ti.K4DegreePerTriangle(g)
		for _, threads := range []int{1, 2, 5, 64} {
			got := ti.K4DegreePerTriangleParallel(g, threads)
			if !int32sEqual(want, got) {
				t.Fatalf("graph %d threads %d: K4 degrees differ", gi, threads)
			}
		}
	}
}

// TestIncidenceBytesEstimates checks that the pre-build estimates equal
// the bytes actually held (the estimate is exact: counts are known before
// allocation).
func TestIncidenceBytesEstimates(t *testing.T) {
	g := graph.PlantedCommunities(4, 16, 0.5, 40, 3)
	deg := CountPerEdge(g)
	var sum int64
	for _, d := range deg {
		sum += int64(d)
	}
	inc := BuildEdgeIncidence(g, deg, 2)
	if est := EdgeIncidenceBytes(g.M(), sum); est != inc.Bytes() {
		t.Fatalf("edge estimate %d != actual %d", est, inc.Bytes())
	}
	ti := BuildTriangleIndex(g)
	kdeg := ti.K4DegreePerTriangle(g)
	sum = 0
	for _, d := range kdeg {
		sum += int64(d)
	}
	kinc := BuildK4Incidence(g, ti, kdeg, 2)
	if est := K4IncidenceBytes(int64(ti.Len()), sum); est != kinc.Bytes() {
		t.Fatalf("K4 estimate %d != actual %d", est, kinc.Bytes())
	}
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
