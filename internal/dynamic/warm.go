package dynamic

import (
	"nucleus/internal/graph"
	"nucleus/internal/localhi"
	"nucleus/internal/nucleus"
)

// Warm-started batch maintenance. The paper's Lemma 2 guarantees the
// iterated h-index computation converges to κ from ANY starting τ that is
// pointwise at least κ — not only from the s-degrees. Since a single edge
// insertion raises core numbers by at most one (Sarıyüce et al. VLDB'13)
// and truss numbers by at most one (Huang et al. SIGMOD'14), the previous
// decomposition plus the batch size is a valid — and very tight — upper
// start after a batch of edits. Removals only lower κ, so the old κ
// already dominates them. The local algorithms then converge in a handful
// of sweeps, mostly skipped by the notification mechanism.

// WarmCoreNumbers computes the core numbers of newG given the core
// numbers of an earlier version of the graph and the number of edges
// inserted since. Vertices must keep their ids; newG may also have grown
// (new vertices start from their degree). Removals need no accounting.
func WarmCoreNumbers(newG *graph.Graph, oldKappa []int32, inserts int) *localhi.Result {
	return WarmCoreNumbersOn(nucleus.NewCore(newG), newG, oldKappa, inserts, 1)
}

// WarmCoreNumbersOn is WarmCoreNumbers against a caller-supplied (1,2)
// instance of newG (e.g. a memoized one) with an explicit worker count.
func WarmCoreNumbersOn(inst nucleus.Instance, newG *graph.Graph, oldKappa []int32, inserts int, threads int) *localhi.Result {
	n := newG.N()
	seed := make([]int32, n)
	for v := 0; v < n; v++ {
		if v < len(oldKappa) {
			seed[v] = oldKappa[v] + int32(inserts)
		} else {
			seed[v] = int32(newG.Degree(uint32(v))) // new vertex: cold start
		}
	}
	return localhi.And(inst, localhi.Options{
		InitialTau:   seed,
		Notification: true,
		Preserve:     true,
		Threads:      threads,
	})
}

// WarmTrussNumbers computes the truss numbers of newG given an earlier
// graph and its truss numbers. Edge identities are matched by endpoints:
// edges surviving from oldG start at their old κ plus the insert count;
// new edges start cold at their triangle count.
func WarmTrussNumbers(newG, oldG *graph.Graph, oldKappa []int32, inserts int) *localhi.Result {
	return WarmTrussNumbersOn(nucleus.NewTruss(newG), newG, oldG, oldKappa, inserts, 1)
}

// WarmTrussNumbersOn is WarmTrussNumbers against a caller-supplied (2,3)
// instance of newG with an explicit worker count.
func WarmTrussNumbersOn(inst nucleus.Instance, newG, oldG *graph.Graph, oldKappa []int32, inserts int, threads int) *localhi.Result {
	seed := inst.Degrees() // cold default for new edges
	oldN := uint32(oldG.N())
	for e := int64(0); e < newG.M(); e++ {
		u, v := newG.Edge(e)
		if u >= oldN || v >= oldN {
			continue // endpoint grown since oldG: necessarily a new edge
		}
		if oldE, ok := oldG.EdgeID(u, v); ok {
			warm := oldKappa[oldE] + int32(inserts)
			if warm < seed[e] {
				seed[e] = warm
			}
		}
	}
	return localhi.And(inst, localhi.Options{
		InitialTau:   seed,
		Notification: true,
		Preserve:     true,
		Threads:      threads,
	})
}
