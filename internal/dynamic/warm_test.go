package dynamic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nucleus/internal/graph"
	"nucleus/internal/localhi"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

// mutate applies `ins` random insertions and `del` random removals to a
// copy of g's edge set and returns the new graph plus the realized insert
// count.
func mutate(g *graph.Graph, ins, del int, seed int64) (*graph.Graph, int) {
	rng := rand.New(rand.NewSource(seed))
	edgeSet := make(map[[2]uint32]struct{})
	for _, e := range g.Edges() {
		edgeSet[e] = struct{}{}
	}
	// Removals first.
	all := g.Edges()
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	for i := 0; i < del && i < len(all); i++ {
		delete(edgeSet, all[i])
	}
	inserted := 0
	n := g.N()
	for tries := 0; inserted < ins && tries < 20*ins; tries++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if _, ok := edgeSet[[2]uint32{u, v}]; ok {
			continue
		}
		edgeSet[[2]uint32{u, v}] = struct{}{}
		inserted++
	}
	var edges [][2]uint32
	for e := range edgeSet {
		edges = append(edges, e)
	}
	return graph.Build(n, edges), inserted
}

func TestWarmCoreNumbersExact(t *testing.T) {
	err := quick.Check(func(seed int64, insRaw, delRaw uint8) bool {
		g := graph.GnM(40, 150, seed)
		oldKappa := peel.Run(nucleus.NewCore(g)).Kappa
		newG, ins := mutate(g, int(insRaw%10), int(delRaw%10), seed+1)
		warm := WarmCoreNumbers(newG, oldKappa, ins)
		want := peel.Run(nucleus.NewCore(newG)).Kappa
		for i := range want {
			if warm.Tau[i] != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(28))})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWarmTrussNumbersExact(t *testing.T) {
	err := quick.Check(func(seed int64, insRaw, delRaw uint8) bool {
		g := graph.GnM(25, 120, seed)
		oldKappa := peel.Run(nucleus.NewTruss(g)).Kappa
		newG, ins := mutate(g, int(insRaw%8), int(delRaw%8), seed+1)
		warm := WarmTrussNumbers(newG, g, oldKappa, ins)
		want := peel.Run(nucleus.NewTruss(newG)).Kappa
		for i := range want {
			if warm.Tau[i] != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(29))})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWarmCoreGrownGraph(t *testing.T) {
	g := graph.PowerLawCluster(100, 4, 0.5, 77)
	oldKappa := peel.Run(nucleus.NewCore(g)).Kappa
	// Grow: three new vertices attached to existing ones.
	edges := g.Edges()
	edges = append(edges,
		[2]uint32{100, 0}, [2]uint32{100, 1},
		[2]uint32{101, 2}, [2]uint32{102, 101})
	newG := graph.Build(103, edges)
	warm := WarmCoreNumbers(newG, oldKappa, 4)
	want := peel.Run(nucleus.NewCore(newG)).Kappa
	for i := range want {
		if warm.Tau[i] != want[i] {
			t.Fatalf("vertex %d: warm %d, want %d", i, warm.Tau[i], want[i])
		}
	}
}

// TestWarmStartSavesSweeps: a small batch on a large graph should converge
// in far fewer sweeps than a cold run.
func TestWarmStartSavesSweeps(t *testing.T) {
	g := graph.PowerLawCluster(2000, 5, 0.5, 79)
	inst := nucleus.NewCore(g)
	oldKappa := peel.Run(inst).Kappa
	newG, ins := mutate(g, 5, 5, 81)
	cold := localhi.And(nucleus.NewCore(newG), localhi.Options{Notification: true})
	warm := WarmCoreNumbers(newG, oldKappa, ins)
	if warm.Sweeps > cold.Sweeps {
		t.Fatalf("warm start slower: %d vs %d sweeps", warm.Sweeps, cold.Sweeps)
	}
	if warm.WorkVisits >= cold.WorkVisits {
		t.Errorf("warm start saved no work: %d vs %d visits", warm.WorkVisits, cold.WorkVisits)
	}
}

// TestLemma2ArbitraryStart empirically verifies the generalized Lemma 2
// that warm starting relies on: AND converges to κ from ANY τ0 >= κ.
func TestLemma2ArbitraryStart(t *testing.T) {
	err := quick.Check(func(seed int64, bumpRaw []uint8) bool {
		g := graph.GnM(30, 120, seed)
		inst := nucleus.NewCore(g)
		kappa := peel.Run(inst).Kappa
		seedTau := make([]int32, len(kappa))
		for i := range seedTau {
			bump := int32(0)
			if len(bumpRaw) > 0 {
				bump = int32(bumpRaw[i%len(bumpRaw)] % 7)
			}
			seedTau[i] = kappa[i] + bump
		}
		res := localhi.And(inst, localhi.Options{InitialTau: seedTau, Notification: true})
		for i := range kappa {
			if res.Tau[i] != kappa[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(30))})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInitialTauValidation(t *testing.T) {
	g := graph.Complete(4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	localhi.And(nucleus.NewCore(g), localhi.Options{InitialTau: []int32{1}})
}
