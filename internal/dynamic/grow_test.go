package dynamic

import (
	"testing"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

func TestGrowAddsIsolatedVertices(t *testing.T) {
	g := New(3)
	g.InsertEdge(0, 1)
	g.Grow(6)
	if g.N() != 6 {
		t.Fatalf("N = %d, want 6", g.N())
	}
	g.Grow(4) // shrink request is a no-op
	if g.N() != 6 {
		t.Fatalf("N after no-op grow = %d", g.N())
	}
	for v := uint32(3); v < 6; v++ {
		if g.Degree(v) != 0 || g.CoreNumber(v) != 0 {
			t.Fatalf("grown vertex %d not isolated: deg=%d κ=%d", v, g.Degree(v), g.CoreNumber(v))
		}
	}
	// Edges into the grown range repair κ correctly.
	g.InsertEdge(3, 4)
	g.InsertEdge(4, 5)
	g.InsertEdge(3, 5)
	assertKappa(t, g, "triangle in grown range")
}

func TestFromStaticCoresSkipsColdPeel(t *testing.T) {
	sg := graph.PowerLawCluster(150, 4, 0.5, 91)
	kappa := peel.Run(nucleus.NewCore(sg)).Kappa
	g := FromStaticCores(sg, kappa)
	if g.N() != sg.N() || g.M() != sg.M() {
		t.Fatalf("shape mismatch: (%d,%d) vs (%d,%d)", g.N(), g.M(), sg.N(), sg.M())
	}
	assertKappa(t, g, "seeded from cores")
	g.InsertEdge(0, 50)
	g.RemoveEdge(0, 50)
	assertKappa(t, g, "after mutations on seeded graph")

	defer func() {
		if recover() == nil {
			t.Fatal("no panic on core-number length mismatch")
		}
	}()
	FromStaticCores(sg, kappa[:10])
}

// TestWarmTrussGrownGraph: warm truss reconvergence must survive newG
// having vertices beyond oldG's range (this used to index oldG out of
// bounds inside EdgeID).
func TestWarmTrussGrownGraph(t *testing.T) {
	g := graph.PowerLawCluster(80, 4, 0.5, 93)
	oldKappa := peel.Run(nucleus.NewTruss(g)).Kappa
	edges := g.Edges()
	// A new triangle hanging off the old graph through a new vertex.
	edges = append(edges, [2]uint32{80, 0}, [2]uint32{80, 1}, [2]uint32{0, 1})
	newG := graph.Build(81, edges)
	warm := WarmTrussNumbers(newG, g, oldKappa, 3)
	want := peel.Run(nucleus.NewTruss(newG)).Kappa
	for e := range want {
		if warm.Tau[e] != want[e] {
			t.Fatalf("edge %d: warm %d, want %d", e, warm.Tau[e], want[e])
		}
	}
}
