package dynamic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

// exact recomputes core numbers from scratch via peeling.
func exact(g *Graph) []int32 {
	return peel.Run(nucleus.NewCore(g.Static())).Kappa
}

func assertKappa(t *testing.T, g *Graph, context string) {
	t.Helper()
	want := exact(g)
	got := g.CoreNumbers()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: κ(%d) = %d, want %d (full: got %v want %v)",
				context, v, got[v], want[v], got, want)
		}
	}
}

func TestInsertSingleEdges(t *testing.T) {
	g := New(4)
	g.InsertEdge(0, 1)
	assertKappa(t, g, "first edge")
	g.InsertEdge(1, 2)
	assertKappa(t, g, "path")
	g.InsertEdge(0, 2)
	assertKappa(t, g, "triangle")
	g.InsertEdge(3, 0)
	g.InsertEdge(3, 1)
	g.InsertEdge(3, 2)
	assertKappa(t, g, "K4")
	if g.CoreNumber(3) != 3 {
		t.Fatalf("K4 core = %d", g.CoreNumber(3))
	}
}

func TestInsertRejectsDuplicatesAndLoops(t *testing.T) {
	g := New(3)
	if !g.InsertEdge(0, 1) {
		t.Fatal("insert failed")
	}
	if g.InsertEdge(0, 1) || g.InsertEdge(1, 0) {
		t.Fatal("duplicate accepted")
	}
	if g.InsertEdge(2, 2) {
		t.Fatal("self-loop accepted")
	}
	if g.M() != 1 {
		t.Fatalf("M = %d", g.M())
	}
}

func TestRemoveBasics(t *testing.T) {
	// Build K4, then dismantle.
	g := New(4)
	for u := uint32(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.InsertEdge(u, v)
		}
	}
	if !g.RemoveEdge(0, 1) {
		t.Fatal("remove failed")
	}
	assertKappa(t, g, "K4 minus one edge")
	if g.RemoveEdge(0, 1) {
		t.Fatal("double remove accepted")
	}
	g.RemoveEdge(2, 3)
	assertKappa(t, g, "4-cycle")
	g.RemoveEdge(0, 2)
	assertKappa(t, g, "path")
}

func TestInsertRandomSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := New(40)
	for step := 0; step < 300; step++ {
		u := uint32(rng.Intn(40))
		v := uint32(rng.Intn(40))
		g.InsertEdge(u, v)
		if step%25 == 0 {
			assertKappa(t, g, "random insert")
		}
	}
	assertKappa(t, g, "final insert state")
}

func TestMixedRandomSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	g := New(30)
	var present [][2]uint32
	for step := 0; step < 500; step++ {
		if len(present) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(present))
			e := present[i]
			g.RemoveEdge(e[0], e[1])
			present[i] = present[len(present)-1]
			present = present[:len(present)-1]
		} else {
			u := uint32(rng.Intn(30))
			v := uint32(rng.Intn(30))
			if g.InsertEdge(u, v) {
				present = append(present, [2]uint32{u, v})
			}
		}
		if step%40 == 0 {
			assertKappa(t, g, "mixed sequence")
		}
	}
	assertKappa(t, g, "final mixed state")
}

func TestMixedQuick(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 5
		g := New(n)
		var present [][2]uint32
		for step := 0; step < 120; step++ {
			if len(present) > 0 && rng.Intn(4) == 0 {
				i := rng.Intn(len(present))
				e := present[i]
				g.RemoveEdge(e[0], e[1])
				present[i] = present[len(present)-1]
				present = present[:len(present)-1]
			} else {
				u := uint32(rng.Intn(n))
				v := uint32(rng.Intn(n))
				if g.InsertEdge(u, v) {
					present = append(present, [2]uint32{u, v})
				}
			}
		}
		want := exact(g)
		got := g.CoreNumbers()
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(21))})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFromStatic(t *testing.T) {
	sg := graph.PowerLawCluster(200, 4, 0.5, 67)
	g := FromStatic(sg)
	if g.N() != sg.N() || g.M() != sg.M() {
		t.Fatalf("shape mismatch: (%d,%d) vs (%d,%d)", g.N(), g.M(), sg.N(), sg.M())
	}
	assertKappa(t, g, "from static")
	// Mutate and re-verify.
	g.InsertEdge(0, 100)
	g.InsertEdge(1, 101)
	g.RemoveEdge(0, 100)
	assertKappa(t, g, "after mutations")
}

func TestStaticRoundTrip(t *testing.T) {
	g := New(5)
	g.InsertEdge(0, 1)
	g.InsertEdge(1, 2)
	s := g.Static()
	if s.N() != 5 || s.M() != 2 {
		t.Fatalf("static snapshot: n=%d m=%d", s.N(), s.M())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Fatal("adjacency wrong")
	}
	if g.Degree(1) != 2 {
		t.Fatalf("degree = %d", g.Degree(1))
	}
}

// TestInsertionGrowsCliqueByOne verifies the ≤1 change theorem visibly:
// closing the last edge of a (k+2)-clique lifts exactly the clique members.
func TestInsertionGrowsCliqueByOne(t *testing.T) {
	g := New(6)
	// K5 missing edge {3,4}.
	for u := uint32(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			if u == 3 && v == 4 {
				continue
			}
			g.InsertEdge(u, v)
		}
	}
	before := append([]int32(nil), g.CoreNumbers()...)
	g.InsertEdge(3, 4)
	after := g.CoreNumbers()
	for v := 0; v < 5; v++ {
		if after[v] != before[v]+1 {
			t.Fatalf("vertex %d: %d -> %d, want +1", v, before[v], after[v])
		}
	}
	if after[5] != 0 {
		t.Fatal("isolated vertex changed")
	}
	assertKappa(t, g, "completed K5")
}
