// Package dynamic maintains a k-core decomposition under edge insertions
// and removals, using the subcore traversal algorithm of Sarıyüce et al.
// ("Streaming Algorithms for k-Core Decomposition", VLDB 2013) — the same
// authors' earlier work that the local-algorithms paper builds on. The key
// theorem: inserting or removing one edge changes core numbers only inside
// the affected subcore (the κ=k S-connected region around the edge, for
// k = min of the endpoint core numbers), and by at most one. The repair is
// therefore local, complementing the query-driven scenario of the local
// algorithms paper.
package dynamic

import (
	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

// Graph is a mutable undirected simple graph with maintained core numbers.
type Graph struct {
	adj   []map[uint32]struct{}
	kappa []int32
	edges int64
}

// New creates a dynamic graph with n isolated vertices (all κ = 0).
func New(n int) *Graph {
	g := &Graph{
		adj:   make([]map[uint32]struct{}, n),
		kappa: make([]int32, n),
	}
	for i := range g.adj {
		g.adj[i] = make(map[uint32]struct{})
	}
	return g
}

// FromStatic initializes a dynamic graph from a static one, computing core
// numbers from scratch.
func FromStatic(sg *graph.Graph) *Graph {
	return FromStaticCores(sg, peel.Run(nucleus.NewCore(sg)).Kappa)
}

// FromStaticCores initializes a dynamic graph from a static snapshot whose
// exact core numbers are already known (e.g. from a cached decomposition),
// skipping the cold peel of FromStatic. kappa is copied; it must be the
// exact core numbers of sg, or later incremental repairs will drift.
func FromStaticCores(sg *graph.Graph, kappa []int32) *Graph {
	if len(kappa) != sg.N() {
		panic("dynamic: core-number length does not match the graph")
	}
	g := New(sg.N())
	for u := 0; u < sg.N(); u++ {
		for _, v := range sg.Neighbors(uint32(u)) {
			if v > uint32(u) {
				g.addAdj(uint32(u), v)
			}
		}
	}
	copy(g.kappa, kappa)
	return g
}

// Grow extends the graph to n vertices; new vertices start isolated with
// κ = 0. No-op when n <= N().
func (g *Graph) Grow(n int) {
	for len(g.adj) < n {
		g.adj = append(g.adj, make(map[uint32]struct{}))
		g.kappa = append(g.kappa, 0)
	}
}

// N returns the vertex count.
func (g *Graph) N() int { return len(g.adj) }

// M returns the edge count.
func (g *Graph) M() int64 { return g.edges }

// Degree returns the degree of u.
func (g *Graph) Degree(u uint32) int { return len(g.adj[u]) }

// HasEdge reports whether {u,v} is present.
func (g *Graph) HasEdge(u, v uint32) bool {
	_, ok := g.adj[u][v]
	return ok
}

// CoreNumbers returns the maintained core numbers (aliased; do not modify).
func (g *Graph) CoreNumbers() []int32 { return g.kappa }

// CoreNumber returns κ(u).
func (g *Graph) CoreNumber(u uint32) int32 { return g.kappa[u] }

func (g *Graph) addAdj(u, v uint32) {
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.edges++
}

func (g *Graph) delAdj(u, v uint32) {
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.edges--
}

// InsertEdge adds edge {u,v} and repairs the core numbers locally.
// Returns false if the edge already exists or is a self-loop.
func (g *Graph) InsertEdge(u, v uint32) bool {
	if u == v || g.HasEdge(u, v) {
		return false
	}
	g.addAdj(u, v)

	// Only vertices with κ = k (the smaller endpoint value) inside the
	// subcore around the edge can gain, by at most 1.
	k := g.kappa[u]
	if g.kappa[v] < k {
		k = g.kappa[v]
	}
	var roots []uint32
	if g.kappa[u] == k {
		roots = append(roots, u)
	}
	if g.kappa[v] == k {
		roots = append(roots, v)
	}
	sub := g.subcore(roots, k)

	// Candidate degree within the potential (k+1)-core: neighbors with
	// κ > k always count; neighbors with κ = k count only while they are
	// themselves unevicted candidates.
	cd := make(map[uint32]int32, len(sub))
	inSub := func(w uint32) bool { _, ok := cd[w]; return ok }
	for _, x := range sub {
		cd[x] = 0
	}
	for _, x := range sub {
		c := int32(0)
		for w := range g.adj[x] {
			if g.kappa[w] > k || inSub(w) {
				c++
			}
		}
		cd[x] = c
	}
	g.evict(cd, k, +1)
	return true
}

// RemoveEdge deletes edge {u,v} and repairs the core numbers locally.
// Returns false if the edge does not exist.
func (g *Graph) RemoveEdge(u, v uint32) bool {
	if u == v || !g.HasEdge(u, v) {
		return false
	}
	g.delAdj(u, v)

	k := g.kappa[u]
	if g.kappa[v] < k {
		k = g.kappa[v]
	}
	var roots []uint32
	if g.kappa[u] == k {
		roots = append(roots, u)
	}
	if g.kappa[v] == k {
		roots = append(roots, v)
	}
	sub := g.subcore(roots, k)

	// Current support within the k-core: neighbors with κ >= k.
	cd := make(map[uint32]int32, len(sub))
	for _, x := range sub {
		cd[x] = 0
	}
	for _, x := range sub {
		c := int32(0)
		for w := range g.adj[x] {
			if g.kappa[w] >= k {
				c++
			}
		}
		cd[x] = c
	}
	g.evictBelow(cd, k)
	return true
}

// subcore returns the vertices with κ = k reachable from the roots through
// vertices with κ = k.
func (g *Graph) subcore(roots []uint32, k int32) []uint32 {
	seen := make(map[uint32]struct{})
	var stack, out []uint32
	for _, r := range roots {
		if g.kappa[r] != k {
			continue
		}
		if _, ok := seen[r]; ok {
			continue
		}
		seen[r] = struct{}{}
		stack = append(stack, r)
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, x)
		for w := range g.adj[x] {
			if g.kappa[w] != k {
				continue
			}
			if _, ok := seen[w]; ok {
				continue
			}
			seen[w] = struct{}{}
			stack = append(stack, w)
		}
	}
	return out
}

// evict runs the insertion-side elimination: candidates with cd <= k cannot
// join the (k+1)-core; they are removed iteratively, decrementing their
// candidate neighbors. Survivors gain delta.
func (g *Graph) evict(cd map[uint32]int32, k int32, delta int32) {
	var queue []uint32
	evicted := make(map[uint32]struct{})
	for x, c := range cd {
		if c <= k {
			queue = append(queue, x)
			evicted[x] = struct{}{}
		}
	}
	for len(queue) > 0 {
		x := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for w := range g.adj[x] {
			if _, isCand := cd[w]; !isCand {
				continue
			}
			if _, gone := evicted[w]; gone {
				continue
			}
			cd[w]--
			if cd[w] <= k {
				evicted[w] = struct{}{}
				queue = append(queue, w)
			}
		}
	}
	for x := range cd {
		if _, gone := evicted[x]; !gone {
			g.kappa[x] += delta
		}
	}
}

// evictBelow runs the removal-side elimination: subcore vertices whose
// support inside the k-core drops below k fall to k-1, cascading.
func (g *Graph) evictBelow(cd map[uint32]int32, k int32) {
	if k == 0 {
		return // κ cannot drop below zero
	}
	var queue []uint32
	dropped := make(map[uint32]struct{})
	for x, c := range cd {
		if c < k {
			queue = append(queue, x)
			dropped[x] = struct{}{}
		}
	}
	for len(queue) > 0 {
		x := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		g.kappa[x] = k - 1
		for w := range g.adj[x] {
			if _, isCand := cd[w]; !isCand {
				continue
			}
			if _, gone := dropped[w]; gone {
				continue
			}
			cd[w]--
			if cd[w] < k {
				dropped[w] = struct{}{}
				queue = append(queue, w)
			}
		}
	}
}

// Static snapshots the current graph as an immutable CSR graph.
func (g *Graph) Static() *graph.Graph {
	var edges [][2]uint32
	for u := range g.adj {
		for v := range g.adj[u] {
			if v > uint32(u) {
				edges = append(edges, [2]uint32{uint32(u), v})
			}
		}
	}
	return graph.Build(len(g.adj), edges)
}
