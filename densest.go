package nucleus

import (
	"nucleus/internal/densest"
)

// DenseSubgraph describes a dense subgraph found by the densest-subgraph
// helpers.
type DenseSubgraph = densest.Result

// DensestSubgraphApprox returns Charikar's greedy 2-approximation of the
// densest subgraph (maximum average degree), computed from the k-core
// peeling order: the best suffix of the peeling sequence.
func DensestSubgraphApprox(g *Graph) *DenseSubgraph { return densest.Approx(g) }

// MaxCoreSubgraph returns the maximum-k core as a dense subgraph; also a
// 2-approximation of the densest subgraph.
func MaxCoreSubgraph(g *Graph) *DenseSubgraph { return densest.MaxCore(g) }

// MeasureDensity computes edge count, average degree and edge density of
// the subgraph induced by the given vertices.
func MeasureDensity(g *Graph, vertices []uint32) *DenseSubgraph {
	return densest.Measure(g, vertices)
}
