package nucleus

import (
	"strings"
	"testing"
)

func TestMaxNucleusCellsAPI(t *testing.T) {
	g := figure2()
	res := Decompose(g, KCore, Options{})
	// Max core of b (vertex 1, κ=2): the triangle {b,c,d}.
	cells := MaxNucleusCells(g, KCore, res.Kappa, 1)
	if len(cells) != 3 {
		t.Fatalf("max core of b = %v", cells)
	}
	vs := CellsToVertices(g, KCore, cells)
	if len(vs) != 3 || vs[0] != 1 || vs[2] != 3 {
		t.Fatalf("vertices = %v", vs)
	}
}

func TestNucleiAtAPI(t *testing.T) {
	g := figure2()
	res := Decompose(g, KCore, Options{})
	if got := NucleiAt(g, KCore, res.Kappa, 2); len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("2-cores = %v", got)
	}
	if got := NucleiAt(g, KCore, res.Kappa, 1); len(got) != 1 || len(got[0]) != 6 {
		t.Fatalf("1-cores = %v", got)
	}
}

func TestKCoreSubgraphAPI(t *testing.T) {
	g := figure2()
	res := Decompose(g, KCore, Options{})
	sub, _ := KCoreSubgraph(g, res.Kappa, 2)
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("2-core: n=%d m=%d", sub.N(), sub.M())
	}
}

func TestDecomposeMaterialized(t *testing.T) {
	g := PowerLawCluster(200, 4, 0.5, 59)
	for _, dec := range []Decomposition{KCore, KTruss, Nucleus34} {
		want := Decompose(g, dec, Options{Algorithm: Peel})
		got := DecomposeMaterialized(g, dec, Options{Algorithm: AND})
		if ExactFraction(got.Kappa, want.Kappa) != 1 {
			t.Fatalf("%v materialized decomposition differs", dec)
		}
	}
}

func TestDynamicAPI(t *testing.T) {
	dg := NewDynamicGraph(4)
	dg.InsertEdge(0, 1)
	dg.InsertEdge(1, 2)
	dg.InsertEdge(0, 2)
	if dg.CoreNumber(0) != 2 {
		t.Fatalf("triangle core = %d", dg.CoreNumber(0))
	}
	dg.RemoveEdge(0, 1)
	if dg.CoreNumber(0) != 1 {
		t.Fatalf("path core = %d", dg.CoreNumber(0))
	}
	g := figure2()
	dg2 := DynamicFromGraph(g)
	exact := Decompose(g, KCore, Options{Algorithm: Peel})
	if ExactFraction(dg2.CoreNumbers(), exact.Kappa) != 1 {
		t.Fatal("DynamicFromGraph core numbers wrong")
	}
}

func TestDensestAPI(t *testing.T) {
	g := figure2()
	res := DensestSubgraphApprox(g)
	// The triangle {b,c,d} has average degree 2, the best in Figure 2.
	if res.AverageDegree < 2 {
		t.Fatalf("densest avg degree = %v", res.AverageDegree)
	}
	mc := MaxCoreSubgraph(g)
	if len(mc.Vertices) != 3 {
		t.Fatalf("max core = %v", mc.Vertices)
	}
	md := MeasureDensity(g, []uint32{1, 2, 3})
	if md.EdgeDensity != 1 {
		t.Fatalf("triangle density = %v", md.EdgeDensity)
	}
}

func TestFormatLoadersAPI(t *testing.T) {
	mtx := "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 3\n1 2\n2 3\n1 3\n"
	g, err := ReadMatrixMarket(strings.NewReader(mtx))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 3 {
		t.Fatalf("mtx edges = %d", g.M())
	}
	metis := "3 3\n2 3\n1 3\n1 2\n"
	g2, err := ReadMETIS(strings.NewReader(metis))
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != 3 {
		t.Fatalf("metis edges = %d", g2.M())
	}
	// Both loaded the triangle: κ₂ = 2 everywhere.
	for _, g := range []*Graph{g, g2} {
		res := Decompose(g, KCore, Options{})
		for _, k := range res.Kappa {
			if k != 2 {
				t.Fatalf("triangle κ = %v", res.Kappa)
			}
		}
	}
}
