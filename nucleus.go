// Package nucleus is a library for hierarchical dense subgraph discovery.
// It implements the local, parallel algorithms of Sarıyüce, Seshadhri and
// Pinar, "Local Algorithms for Hierarchical Dense Subgraph Discovery"
// (PVLDB 12(1), 2018): iterated h-index computation that converges to the
// exact k-core, k-truss and k-(r,s) nucleus decompositions, alongside the
// classic global peeling baseline.
//
// The entry point is Decompose:
//
//	g, _ := nucleus.LoadEdgeList("graph.txt")
//	res := nucleus.Decompose(g, nucleus.KTruss, nucleus.Options{Algorithm: nucleus.AND})
//	forest := nucleus.BuildHierarchy(g, nucleus.KTruss, res.Kappa)
//
// Decompositions are selected by (r,s): KCore is (1,2) over vertices and
// degrees, KTruss is (2,3) over edges and triangle counts, Nucleus34 is
// (3,4) over triangles and 4-clique counts — the paper's recommended sweet
// spot for dense subgraph quality. DecomposeRS supports any r < s via a
// flat clique-incidence index (practical for small graphs).
package nucleus

import (
	"fmt"

	"nucleus/internal/graph"
	"nucleus/internal/localhi"
	inucleus "nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

// Graph is the undirected simple graph type of the library.
type Graph = graph.Graph

// Decomposition selects which (r,s) nucleus decomposition to compute.
type Decomposition int

const (
	// KCore is the (1,2) decomposition: vertex core numbers.
	KCore Decomposition = iota
	// KTruss is the (2,3) decomposition: edge truss numbers (with triangle
	// connectivity, i.e. the (2,3) nucleus of the paper).
	KTruss
	// Nucleus34 is the (3,4) decomposition: triangle κ indices.
	Nucleus34
)

func (d Decomposition) String() string {
	switch d {
	case KCore:
		return "(1,2) k-core"
	case KTruss:
		return "(2,3) k-truss"
	case Nucleus34:
		return "(3,4) nucleus"
	}
	return fmt.Sprintf("Decomposition(%d)", int(d))
}

// Algorithm selects how the decomposition is computed.
type Algorithm int

const (
	// AND is the asynchronous local algorithm (Algorithm 3); the fastest,
	// and the default.
	AND Algorithm = iota
	// SND is the synchronous local algorithm (Algorithm 2).
	SND
	// Peel is the global bucket-peeling baseline (Algorithm 1).
	Peel
)

func (a Algorithm) String() string {
	switch a {
	case AND:
		return "AND"
	case SND:
		return "SND"
	case Peel:
		return "Peel"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Scheduling selects the parallel work distribution strategy.
type Scheduling = localhi.Scheduling

// Scheduling strategies for parallel sweeps.
const (
	Dynamic = localhi.Dynamic
	Static  = localhi.Static
)

// Options configures Decompose.
type Options struct {
	// Algorithm selects AND (default), SND or Peel.
	Algorithm Algorithm
	// Threads is the worker count; <=1 runs sequentially. The local
	// algorithms split sweeps across workers; Peel runs the parallel
	// bucket engine, peeling each minimum-degree frontier across workers
	// with a deterministic barrier merge (results are bit-identical at
	// every thread count).
	Threads int
	// MaxSweeps bounds local iterations; 0 runs to convergence. A bounded
	// run returns an approximation: τ ≥ κ pointwise.
	MaxSweeps int
	// Notification enables AND's plateau-skipping wakeup mechanism.
	// Defaults to on for AND; set DisableNotification to turn it off.
	DisableNotification bool
	// Scheduling selects Dynamic (default) or Static chunking.
	Scheduling Scheduling
	// Order overrides AND's processing order (cell ids).
	Order []int32
	// OnSweep is invoked after each local sweep with the current τ.
	OnSweep func(sweep int, tau []int32)
	// Progress, when non-nil, receives copy-on-write τ snapshots with
	// per-sweep convergence metrics while the run is in flight — the
	// anytime property made observable (see NewProgress and
	// docs/ANYTIME.md). Ignored by Peel, which has no intermediate state.
	Progress *Progress
	// Stop, when non-nil, is polled between sweeps; returning true ends
	// the run early with the intermediate τ (τ ≥ κ pointwise) and
	// Converged false. Use it for cancellation and wall-clock deadlines.
	// Ignored by Peel.
	Stop func() bool
}

// Result is the outcome of a decomposition.
type Result struct {
	// Decomposition echoes the requested instance.
	Decomposition Decomposition
	// Kappa[c] is the κ index of cell c (vertex id for KCore, edge id for
	// KTruss, triangle id for Nucleus34). For bounded local runs this is
	// the current τ, an upper bound on κ.
	Kappa []int32
	// MaxKappa is the largest value in Kappa.
	MaxKappa int32
	// Converged is true when Kappa is the exact decomposition.
	Converged bool
	// Stopped is true when Options.Stop ended the run early.
	Stopped bool
	// Iterations counts local sweeps that changed some τ (0 for peeling).
	Iterations int
	// Sweeps counts all local sweeps including the convergence check.
	Sweeps int
	inst   inucleus.Instance
}

// Decompose computes the selected decomposition of g.
func Decompose(g *Graph, dec Decomposition, opts Options) *Result {
	return decomposeInstance(instanceFor(g, dec), dec, opts)
}

// DecomposeRS computes the generic (r,s) decomposition (r < s). The
// first-class pairs (1,2), (2,3) and (3,4) route to the same instances
// Decompose uses — cells are numbered by the family's canonical ids
// (vertices, edge ids, triangle ids) and the flat s-clique incidence index
// is built in parallel over Options.Threads. Any other pair materializes a
// flat CSR incidence over the enumerated r-/s-cliques (nucleus.FlatRS), so
// generic (r,s) runs the exact same engines: the fused sweep kernels of
// the local algorithms and the parallel peeling frontier. Enumeration
// keeps the generic path practical for small-to-medium graphs only.
func DecomposeRS(g *Graph, r, s int, opts Options) *Result {
	threads := opts.Threads
	if threads < 1 {
		threads = 1
	}
	var inst inucleus.Instance
	switch {
	case r == 1 && s == 2:
		inst = inucleus.NewCore(g)
	case r == 2 && s == 3:
		inst, _ = inucleus.Build(g, inucleus.FamilyTruss, -1, threads)
	case r == 3 && s == 4:
		inst, _ = inucleus.Build(g, inucleus.FamilyN34, -1, threads)
	default:
		inst = inucleus.NewFlatRS(g, r, s, threads)
	}
	return decomposeInstance(inst, Decomposition(-1), opts)
}

func decomposeInstance(inst inucleus.Instance, dec Decomposition, opts Options) *Result {
	res := &Result{Decomposition: dec, inst: inst}
	switch opts.Algorithm {
	case Peel:
		pr := peel.RunThreads(inst, opts.Threads)
		res.Kappa = pr.Kappa
		res.MaxKappa = pr.MaxKappa
		res.Converged = true
	case SND:
		lr := localhi.Snd(inst, localhi.Options{
			Threads:    opts.Threads,
			MaxSweeps:  opts.MaxSweeps,
			Scheduling: opts.Scheduling,
			OnSweep:    opts.OnSweep,
			Progress:   opts.Progress,
			Stop:       opts.Stop,
		})
		fillLocal(res, lr)
	default: // AND
		lr := localhi.And(inst, localhi.Options{
			Threads:      opts.Threads,
			MaxSweeps:    opts.MaxSweeps,
			Scheduling:   opts.Scheduling,
			Order:        opts.Order,
			Notification: !opts.DisableNotification,
			OnSweep:      opts.OnSweep,
			Progress:     opts.Progress,
			Stop:         opts.Stop,
		})
		fillLocal(res, lr)
	}
	return res
}

func fillLocal(res *Result, lr *localhi.Result) {
	res.Kappa = lr.Tau
	res.Converged = lr.Converged
	res.Stopped = lr.Stopped
	res.Iterations = lr.Iterations
	res.Sweeps = lr.Sweeps
	for _, k := range lr.Tau {
		if k > res.MaxKappa {
			res.MaxKappa = k
		}
	}
}

func instanceFor(g *Graph, dec Decomposition) inucleus.Instance {
	switch dec {
	case KCore:
		return inucleus.NewCore(g)
	case KTruss:
		return inucleus.NewTruss(g)
	case Nucleus34:
		return inucleus.NewN34(g)
	}
	panic(fmt.Sprintf("nucleus: unknown decomposition %d", dec))
}

// DecomposeMaterialized is Decompose over a materialized instance: the
// s-clique co-member lists are computed once and stored, trading memory
// for avoiding per-sweep re-enumeration (the §5 trade-off). Profitable
// when many sweeps run on a graph whose s-clique lists fit in memory.
func DecomposeMaterialized(g *Graph, dec Decomposition, opts Options) *Result {
	return decomposeInstance(inucleus.Materialize(instanceFor(g, dec)), dec, opts)
}

// CellLabel formats cell c of the result's decomposition for display
// (vertex, edge endpoints, or triangle vertices).
func (r *Result) CellLabel(c int32) string { return r.inst.CellLabel(c) }

// CellVertices returns the vertices of cell c.
func (r *Result) CellVertices(c int32) []uint32 {
	return r.inst.CellVertices(c, nil)
}

// Histogram returns the count of cells per κ value, indexed by κ.
func (r *Result) Histogram() []int64 {
	h := make([]int64, r.MaxKappa+1)
	for _, k := range r.Kappa {
		h[k]++
	}
	return h
}
