package nucleus

import (
	"nucleus/internal/dynamic"
)

// DynamicGraph is a mutable graph that maintains its k-core decomposition
// incrementally: each edge insertion or removal repairs the core numbers by
// traversing only the affected subcore (the κ=k region around the edge),
// never the whole graph. This pairs with the query-driven scenario of the
// local algorithms: both exploit that κ indices depend only on local
// structure.
type DynamicGraph = dynamic.Graph

// NewDynamicGraph creates a dynamic graph with n isolated vertices.
func NewDynamicGraph(n int) *DynamicGraph { return dynamic.New(n) }

// DynamicFromGraph initializes a dynamic graph from a static snapshot,
// computing the initial core numbers with the peeling baseline.
func DynamicFromGraph(g *Graph) *DynamicGraph { return dynamic.FromStatic(g) }

// WarmCoreNumbers recomputes core numbers after a batch of edge edits by
// warm-starting the local AND algorithm from the previous κ plus the
// insert count (a valid upper start: one insertion raises κ by at most
// one, and Lemma 2 guarantees convergence from any pointwise upper
// bound). Far cheaper than a cold run when the batch is small.
func WarmCoreNumbers(newG *Graph, oldKappa []int32, inserts int) []int32 {
	return dynamic.WarmCoreNumbers(newG, oldKappa, inserts).Tau
}

// WarmTrussNumbers recomputes truss numbers after a batch of edits; edges
// are matched between the old and new graph by endpoints.
func WarmTrussNumbers(newG, oldG *Graph, oldKappa []int32, inserts int) []int32 {
	return dynamic.WarmTrussNumbers(newG, oldG, oldKappa, inserts).Tau
}
