package nucleus

import (
	"io"

	"nucleus/internal/graph"
	"nucleus/internal/hierarchy"
	"nucleus/internal/localhi"
	"nucleus/internal/metrics"
	"nucleus/internal/query"
	"nucleus/internal/replica"
	"nucleus/internal/server"
	"nucleus/internal/store"
)

// ---------------------------------------------------------------------------
// Graph construction and IO.

// BuildGraph constructs a graph from an edge list. Self-loops are removed
// and duplicate edges collapsed. Pass n = -1 to infer the vertex count.
func BuildGraph(n int, edges [][2]uint32) *Graph { return graph.Build(n, edges) }

// BuildGraphThreads is BuildGraph with up to threads workers. The result is
// bit-identical to BuildGraph at every thread count.
func BuildGraphThreads(n int, edges [][2]uint32, threads int) *Graph {
	return graph.BuildThreads(n, edges, threads)
}

// LoadEdgeList reads a whitespace-separated edge-list file ('#'/'%'
// comments allowed).
func LoadEdgeList(path string) (*Graph, error) { return graph.LoadEdgeList(path) }

// ReadEdgeList parses an edge list from a reader.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// ReadMatrixMarket parses a MatrixMarket coordinate file as an undirected
// graph (entry values ignored; 1-based indices converted).
func ReadMatrixMarket(r io.Reader) (*Graph, error) { return graph.ReadMatrixMarket(r) }

// ReadMETIS parses a METIS graph file (vertex and edge weights skipped).
func ReadMETIS(r io.Reader) (*Graph, error) { return graph.ReadMETIS(r) }

// Generators, re-exported for the examples and experiment drivers.
var (
	// GnM is the Erdős–Rényi G(n,m) generator.
	GnM = graph.GnM
	// BarabasiAlbert is the preferential-attachment generator.
	BarabasiAlbert = graph.BarabasiAlbert
	// RMAT is the recursive-matrix generator.
	RMAT = graph.RMAT
	// PlantedCommunities generates dense communities with a sparse backbone.
	PlantedCommunities = graph.PlantedCommunities
	// PowerLawCluster is the Holme–Kim triangle-rich generator.
	PowerLawCluster = graph.PowerLawCluster
	// WattsStrogatz is the small-world generator.
	WattsStrogatz = graph.WattsStrogatz
)

// ---------------------------------------------------------------------------
// Hierarchy.

// Forest is the nucleus hierarchy: a forest whose nodes are k-(r,s) nuclei,
// children nested inside parents.
type Forest = hierarchy.Forest

// HierarchyNode is one nucleus in a Forest.
type HierarchyNode = hierarchy.Node

// BuildHierarchy materializes the nucleus forest of a decomposition from
// its κ indices.
func BuildHierarchy(g *Graph, dec Decomposition, kappa []int32) *Forest {
	return hierarchy.Build(instanceFor(g, dec), kappa)
}

// MaxNucleusCells returns the cells of the maximum nucleus of the given
// cell: the maximal S-connected set of cells with κ >= κ(cell) around it
// (the paper's "maximum core of a vertex", generalized).
func MaxNucleusCells(g *Graph, dec Decomposition, kappa []int32, cell int32) []int32 {
	return hierarchy.MaxNucleusOf(instanceFor(g, dec), kappa, cell)
}

// NucleiAt returns the cell sets of all k-(r,s) nuclei at threshold k: the
// S-connected components of the cells with κ >= k.
func NucleiAt(g *Graph, dec Decomposition, kappa []int32, k int32) [][]int32 {
	return hierarchy.KNucleusSubgraphs(instanceFor(g, dec), kappa, k)
}

// CellsToVertices maps a cell set of the given decomposition to its sorted
// distinct vertex set.
func CellsToVertices(g *Graph, dec Decomposition, cells []int32) []uint32 {
	return hierarchy.CellsToVertices(instanceFor(g, dec), cells)
}

// KCoreSubgraph extracts the induced subgraph of the classic k-core (all
// vertices with core number >= k) plus the old→new vertex mapping. kappa
// must come from a KCore decomposition.
func KCoreSubgraph(g *Graph, kappa []int32, k int32) (*Graph, []int32) {
	return hierarchy.KCoreSubgraph(g, kappa, k)
}

// ---------------------------------------------------------------------------
// Query-driven estimation.

// QueryEstimate is a query-driven estimation result.
type QueryEstimate = query.Estimate

// EstimateCoreNumbers estimates the core numbers of the query vertices
// using only the cells within `hops` hops and at most maxSweeps local
// iterations (0 = until the restricted computation converges). Estimates
// are upper bounds that tighten as hops grow.
func EstimateCoreNumbers(g *Graph, queries []uint32, hops, maxSweeps int) *QueryEstimate {
	return query.CoreNumbers(g, queries, hops, maxSweeps)
}

// EstimateTrussNumbers estimates the truss numbers of the query edges using
// only the edges within `hops` hops of their endpoints.
func EstimateTrussNumbers(g *Graph, queryEdges [][2]uint32, hops, maxSweeps int) *QueryEstimate {
	return query.TrussNumbers(g, queryEdges, hops, maxSweeps)
}

// ---------------------------------------------------------------------------
// Quality metrics.

// KendallTau computes the tie-aware Kendall τ-b correlation between two κ/τ
// assignments; 1.0 means identical orderings. This is the similarity score
// of the paper's convergence plots.
func KendallTau(a, b []int32) float64 { return metrics.KendallTauB(a, b) }

// ExactFraction is the fraction of cells whose approximate index equals the
// exact one.
func ExactFraction(approx, exact []int32) float64 {
	return metrics.ExactFraction(approx, exact)
}

// DefaultThreads returns a sensible worker count for parallel runs.
func DefaultThreads() int { return localhi.DefaultThreads() }

// ---------------------------------------------------------------------------
// Anytime progress.

// Progress publishes copy-on-write τ snapshots with per-sweep
// convergence metrics while a local decomposition runs: poll Latest,
// stream via Subscribe, and wait on Done. Set it on Options.Progress.
// See docs/ANYTIME.md for the anytime model.
type Progress = localhi.Progress

// ProgressSnapshot is one immutable anytime observation: the τ array
// copy plus max τ, τ sum, the per-sweep update rate and the fraction of
// stable cells — the paper's ground-truth-free convergence signals.
type ProgressSnapshot = localhi.Snapshot

// NewProgress constructs a progress publisher that snapshots every k-th
// sweep (k <= 1 means every sweep; the final sweep always publishes).
func NewProgress(every int) *Progress { return localhi.NewProgress(every) }

// ---------------------------------------------------------------------------
// Serving layer (nucleusd).

// ServerConfig configures the nucleusd HTTP serving layer: worker pool
// size, job queue depth, LRU result cache capacity and upload limits.
type ServerConfig = server.Config

// Server is the nucleusd HTTP serving layer: a graph registry with
// incremental edge mutations (core numbers repaired locally and cache
// entries warm-started across versions), an async decomposition job queue
// with an LRU result cache, and synchronous query-driven estimation,
// core-number lookup, hierarchy and densest-subgraph endpoints. It
// implements http.Handler; see docs/API.md for the endpoint reference.
type Server = server.Server

// NewServer constructs a Server and starts its worker pool. If the config
// carries a durable Store, construction first replays persisted snapshots
// and WALs, recovering every graph at its exact pre-restart version.
// Mount the Server on any http.Server, or run the cmd/nucleusd binary.
// Call Close to drain in-flight jobs on shutdown.
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// GraphStore is the pluggable persistence backend of the serving layer:
// versioned binary graph snapshots plus a write-ahead log of edge-mutation
// batches. Set it on ServerConfig.Store to make nucleusd durable.
type GraphStore = store.Store

// OpenFSStore opens (creating as needed) the filesystem-backed GraphStore
// rooted at dir — one directory per graph holding its current snapshot and
// WAL. See docs/OPERATIONS.md for the layout and crash-consistency
// guarantees.
func OpenFSStore(dir string) (GraphStore, error) { return store.OpenFS(dir) }

// NullGraphStore returns the no-op GraphStore: nothing is persisted and
// nothing is recovered. It is the default when ServerConfig.Store is nil.
func NullGraphStore() GraphStore { return store.Null() }

// ReplicationConfig configures a node's place in a replicated fleet
// (docs/REPLICATION.md): its role, the primary a replica pulls from,
// the pull cadence and the starting cluster generation. Set it on
// ServerConfig.Replication; the zero value is a standalone node.
type ReplicationConfig = server.ReplicationConfig

// Replication roles for ReplicationConfig.Role.
const (
	RoleStandalone = replica.RoleStandalone
	RolePrimary    = replica.RolePrimary
	RoleReplica    = replica.RoleReplica
)
