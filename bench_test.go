// Benchmarks regenerating the computational kernel of every table and
// figure in the paper's evaluation. Each benchmark reports domain metrics
// (iterations, Kendall-Tau, modeled speedup) via b.ReportMetric alongside
// the usual ns/op. The full paper-style tables are printed by
// cmd/experiments; EXPERIMENTS.md records both.
package nucleus

import (
	"testing"

	"nucleus/internal/dataset"
	"nucleus/internal/hierarchy"
	"nucleus/internal/hindex"
	"nucleus/internal/localhi"
	"nucleus/internal/metrics"
	inucleus "nucleus/internal/nucleus"
	"nucleus/internal/peel"
	"nucleus/internal/sched"
)

// fbTruss returns the k-truss instance of the facebook analogue, the
// dataset of the paper's Figure 1a/Figure 5.
func fbTruss() inucleus.Instance { return inucleus.NewTruss(dataset.Get("fb").Graph()) }
func fbCore() inucleus.Instance  { return inucleus.NewCore(dataset.Get("fb").Graph()) }
func fbN34() inucleus.Instance   { return inucleus.NewN34(dataset.Get("fb").Graph()) }

// BenchmarkFig1aTrussConvergence regenerates Figure 1a's kernel: SND on the
// k-truss instance, tracking Kendall-Tau of τ_t against exact κ. Reports
// the iteration count and the Kendall-Tau reached after 5 iterations.
func BenchmarkFig1aTrussConvergence(b *testing.B) {
	inst := fbTruss()
	exact := peel.Run(inst).Kappa
	var iters int
	var ktAt5 float64
	for i := 0; i < b.N; i++ {
		res := localhi.Snd(inst, localhi.Options{OnSweep: func(s int, tau []int32) {
			if s == 5 {
				ktAt5 = metrics.KendallTauB(tau, exact)
			}
		}})
		iters = res.Iterations
	}
	b.ReportMetric(float64(iters), "iterations")
	b.ReportMetric(ktAt5, "kendall-tau@5")
}

// BenchmarkFig1bScalability regenerates Figure 1b's kernel: the modeled
// speedup of parallel local sweeps at 4 and 24 threads under dynamic
// scheduling (see DESIGN.md §4 on the single-core substitution).
func BenchmarkFig1bScalability(b *testing.B) {
	inst := fbTruss()
	deg := inst.Degrees()
	work := make([]int64, len(deg))
	for i, d := range deg {
		work[i] = int64(d) + 1
	}
	var s4, s24 float64
	for i := 0; i < b.N; i++ {
		s4 = sched.Speedup(work, 4, false, 64)
		s24 = sched.Speedup(work, 24, false, 64)
	}
	b.ReportMetric(s4, "speedup-4t")
	b.ReportMetric(s24, "speedup-24t")
	b.ReportMetric(s24/s4, "ratio-24v4")
}

// BenchmarkTable3DatasetStats regenerates Table 3's kernel: counting
// triangles and 4-cliques of a dataset.
func BenchmarkTable3DatasetStats(b *testing.B) {
	g := dataset.Get("fb").Graph()
	var s dataset.Stats
	for i := 0; i < b.N; i++ {
		s = dataset.Measure(g)
	}
	b.ReportMetric(float64(s.Tri), "triangles")
	b.ReportMetric(float64(s.K4), "k4s")
}

// Table 4: iterations to convergence, SND vs AND, per decomposition.

func benchTable4(b *testing.B, inst inucleus.Instance) {
	var sndIters, andIters int
	for i := 0; i < b.N; i++ {
		sndIters = localhi.Snd(inst, localhi.Options{}).Iterations
		andIters = localhi.And(inst, localhi.Options{Notification: true}).Iterations
	}
	b.ReportMetric(float64(sndIters), "snd-iters")
	b.ReportMetric(float64(andIters), "and-iters")
	b.ReportMetric(float64(sndIters)/float64(andIters), "snd/and")
}

func BenchmarkTable4IterationsCore(b *testing.B)  { benchTable4(b, fbCore()) }
func BenchmarkTable4IterationsTruss(b *testing.B) { benchTable4(b, fbTruss()) }
func BenchmarkTable4IterationsN34(b *testing.B)   { benchTable4(b, fbN34()) }

// Table 5: runtime of each algorithm per decomposition; these benchmarks
// measure each algorithm's wall clock directly.

func benchAlg(b *testing.B, inst inucleus.Instance, alg string) {
	for i := 0; i < b.N; i++ {
		switch alg {
		case "peel":
			peel.Run(inst)
		case "snd":
			localhi.Snd(inst, localhi.Options{})
		case "and":
			localhi.And(inst, localhi.Options{Notification: true})
		}
	}
}

func BenchmarkTable5PeelCore(b *testing.B)  { benchAlg(b, fbCore(), "peel") }
func BenchmarkTable5SndCore(b *testing.B)   { benchAlg(b, fbCore(), "snd") }
func BenchmarkTable5AndCore(b *testing.B)   { benchAlg(b, fbCore(), "and") }
func BenchmarkTable5PeelTruss(b *testing.B) { benchAlg(b, fbTruss(), "peel") }
func BenchmarkTable5SndTruss(b *testing.B)  { benchAlg(b, fbTruss(), "snd") }
func BenchmarkTable5AndTruss(b *testing.B)  { benchAlg(b, fbTruss(), "and") }
func BenchmarkTable5PeelN34(b *testing.B)   { benchAlg(b, fbN34(), "peel") }
func BenchmarkTable5SndN34(b *testing.B)    { benchAlg(b, fbN34(), "snd") }
func BenchmarkTable5AndN34(b *testing.B)    { benchAlg(b, fbN34(), "and") }

// BenchmarkFig5Plateaus regenerates Figure 5's kernel: SND with τ
// trajectories, reporting the plateau fraction — the redundant work the
// notification mechanism skips.
func BenchmarkFig5Plateaus(b *testing.B) {
	inst := fbTruss()
	var plateau float64
	for i := 0; i < b.N; i++ {
		res := localhi.Snd(inst, localhi.Options{})
		cellSweeps := int64(res.Sweeps) * int64(inst.NumCells())
		plateau = float64(cellSweeps-res.Updates) / float64(cellSweeps)
	}
	b.ReportMetric(100*plateau, "plateau-%")
}

// BenchmarkE9ConvergenceBound regenerates the Theorem 3 study: degree
// levels versus observed iterations.
func BenchmarkE9ConvergenceBound(b *testing.B) {
	inst := fbCore()
	var levels, iters int
	for i := 0; i < b.N; i++ {
		levels = peel.Levels(inst).Count
		iters = localhi.Snd(inst, localhi.Options{}).Iterations
	}
	b.ReportMetric(float64(levels), "levels-bound")
	b.ReportMetric(float64(iters), "observed-iters")
	b.ReportMetric(float64(inst.NumCells()), "trivial-bound")
}

// BenchmarkE10Tradeoff regenerates the accuracy/runtime trade-off: a
// 3-sweep budgeted SND run, reporting the quality reached.
func BenchmarkE10Tradeoff(b *testing.B) {
	inst := fbTruss()
	exact := peel.Run(inst).Kappa
	var kt, ef float64
	for i := 0; i < b.N; i++ {
		res := localhi.Snd(inst, localhi.Options{MaxSweeps: 3})
		kt = metrics.KendallTauB(res.Tau, exact)
		ef = metrics.ExactFraction(res.Tau, exact)
	}
	b.ReportMetric(kt, "kendall-tau@3")
	b.ReportMetric(ef, "exact-frac@3")
}

// BenchmarkE11QueryDriven regenerates the query-driven scenario: core
// numbers of 16 query vertices from their 2-hop neighborhoods.
func BenchmarkE11QueryDriven(b *testing.B) {
	g := dataset.Get("hg").Graph()
	inst := inucleus.NewCore(g)
	exact := peel.Run(inst).Kappa
	queries := make([]uint32, 16)
	for i := range queries {
		queries[i] = uint32(i * 401)
	}
	var mre float64
	var touched int
	for i := 0; i < b.N; i++ {
		region := g.BFSWithin(queries, 2)
		cells := make([]int32, len(region))
		for j, v := range region {
			cells[j] = int32(v)
		}
		res := localhi.And(inst, localhi.Options{Subset: cells, Notification: true})
		est := make([]int32, len(queries))
		want := make([]int32, len(queries))
		for j, q := range queries {
			est[j] = res.Tau[q]
			want[j] = exact[q]
		}
		mre = metrics.MeanRelativeError(est, want)
		touched = len(region)
	}
	b.ReportMetric(mre, "mean-rel-err")
	b.ReportMetric(100*float64(touched)/float64(g.N()), "region-%")
}

// BenchmarkE12OrderAblation regenerates the Theorem 4 ablation: AND under
// the peeling order versus its reverse.
func BenchmarkE12OrderAblation(b *testing.B) {
	inst := fbCore()
	pr := peel.Run(inst)
	rev := make([]int32, len(pr.Order))
	for i, c := range pr.Order {
		rev[len(rev)-1-i] = c
	}
	var fwd, bwd int
	for i := 0; i < b.N; i++ {
		fwd = localhi.And(inst, localhi.Options{Order: pr.Order}).Iterations
		bwd = localhi.And(inst, localhi.Options{Order: rev}).Iterations
	}
	b.ReportMetric(float64(fwd), "peel-order-iters")
	b.ReportMetric(float64(bwd), "reverse-order-iters")
}

// BenchmarkE13Scheduling regenerates the §4.4 scheduling study: static vs
// dynamic makespan on a skewed work profile at 24 threads.
func BenchmarkE13Scheduling(b *testing.B) {
	inst := fbTruss()
	deg := inst.Degrees()
	work := make([]int64, len(deg))
	// Skew: silence the second half, as the notification mechanism does
	// once a region converges.
	for i, d := range deg {
		if i < len(deg)/2 {
			work[i] = int64(d) + 1
		}
	}
	var st, dy float64
	for i := 0; i < b.N; i++ {
		st = sched.Speedup(work, 24, true, 0)
		dy = sched.Speedup(work, 24, false, 64)
	}
	b.ReportMetric(st, "static-speedup")
	b.ReportMetric(dy, "dynamic-speedup")
}

// BenchmarkE14HIndex compares the h-index implementations of §4.4.
func BenchmarkE14HIndexSort(b *testing.B)   { benchHIndex(b, hindex.Sort) }
func BenchmarkE14HIndexLinear(b *testing.B) { benchHIndex(b, hindex.Linear) }

func benchHIndex(b *testing.B, f func([]int32) int32) {
	vals := make([]int32, 512)
	for i := range vals {
		vals[i] = int32((i * 7919) % 300)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(vals)
	}
}

// BenchmarkMaterializedVsOnTheFly quantifies the §5 trade-off: the
// on-the-fly truss instance re-intersects adjacency lists every sweep,
// while the materialized instance pays memory for O(1) re-iteration.
func BenchmarkMaterializedOnTheFly(b *testing.B) {
	inst := fbTruss()
	for i := 0; i < b.N; i++ {
		localhi.And(inst, localhi.Options{Notification: true})
	}
}

func BenchmarkMaterializedPrebuilt(b *testing.B) {
	m := inucleus.Materialize(fbTruss())
	b.ReportMetric(float64(m.MemoryCells()), "stored-entries")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		localhi.And(m, localhi.Options{Notification: true})
	}
}

// BenchmarkHierarchyBuild measures materializing the truss hierarchy, the
// deliverable of the paper's title.
func BenchmarkHierarchyBuild(b *testing.B) {
	inst := fbTruss()
	kappa := peel.Run(inst).Kappa
	var nodes int
	for i := 0; i < b.N; i++ {
		nodes = hierarchy.Build(inst, kappa).NumNodes()
	}
	b.ReportMetric(float64(nodes), "nuclei")
}

// BenchmarkParallelSweeps measures goroutine-parallel SND at several worker
// counts (wall clock on this host; the modeled scalability is Fig 1b).
func BenchmarkParallelSweeps1(b *testing.B) { benchParallel(b, 1) }
func BenchmarkParallelSweeps4(b *testing.B) { benchParallel(b, 4) }

func benchParallel(b *testing.B, threads int) {
	inst := fbTruss()
	for i := 0; i < b.N; i++ {
		localhi.Snd(inst, localhi.Options{Threads: threads})
	}
}
