package nucleus

import (
	"strings"
	"testing"

	"nucleus/internal/graph"
)

func figure2() *Graph { return graph.Figure2() }

func TestDecomposeKCoreAllAlgorithms(t *testing.T) {
	g := figure2()
	want := []int32{1, 2, 2, 2, 1, 1}
	for _, alg := range []Algorithm{Peel, SND, AND} {
		res := Decompose(g, KCore, Options{Algorithm: alg})
		if !res.Converged {
			t.Fatalf("%v did not converge", alg)
		}
		for i := range want {
			if res.Kappa[i] != want[i] {
				t.Fatalf("%v κ = %v, want %v", alg, res.Kappa, want)
			}
		}
		if res.MaxKappa != 2 {
			t.Fatalf("%v max κ = %d", alg, res.MaxKappa)
		}
	}
}

func TestDecomposeAgreementAcrossInstances(t *testing.T) {
	g := PowerLawCluster(300, 5, 0.5, 51)
	for _, dec := range []Decomposition{KCore, KTruss, Nucleus34} {
		base := Decompose(g, dec, Options{Algorithm: Peel})
		for _, alg := range []Algorithm{SND, AND} {
			res := Decompose(g, dec, Options{Algorithm: alg, Threads: 3})
			if len(res.Kappa) != len(base.Kappa) {
				t.Fatalf("%v %v: length mismatch", dec, alg)
			}
			for i := range base.Kappa {
				if res.Kappa[i] != base.Kappa[i] {
					t.Fatalf("%v %v disagrees with peeling at cell %d", dec, alg, i)
				}
			}
		}
	}
}

func TestDecomposeRS(t *testing.T) {
	g := BuildGraph(6, [][2]uint32{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5},
		{1, 2}, {1, 3}, {1, 4}, {1, 5},
		{2, 3}, {2, 4}, {2, 5},
		{3, 4}, {3, 5},
		{4, 5},
	}) // K6
	// (2,4) on K6: each edge is in C(4,2)=6 four-cliques; uniform peel: κ=6.
	res := DecomposeRS(g, 2, 4, Options{Algorithm: SND})
	for _, k := range res.Kappa {
		if k != 6 {
			t.Fatalf("(2,4) κ = %v", res.Kappa)
		}
	}
}

func TestDecomposeBudget(t *testing.T) {
	g := PowerLawCluster(500, 5, 0.5, 53)
	exact := Decompose(g, KTruss, Options{Algorithm: Peel})
	approx := Decompose(g, KTruss, Options{Algorithm: SND, MaxSweeps: 2})
	if approx.Converged && approx.Sweeps > 2 {
		t.Fatal("budget ignored")
	}
	for i := range exact.Kappa {
		if approx.Kappa[i] < exact.Kappa[i] {
			t.Fatal("approximation below κ")
		}
	}
	if KendallTau(approx.Kappa, exact.Kappa) < 0.5 {
		t.Error("two sweeps should already correlate strongly")
	}
	if ExactFraction(exact.Kappa, exact.Kappa) != 1.0 {
		t.Error("self exact fraction != 1")
	}
}

func TestHistogram(t *testing.T) {
	g := figure2()
	res := Decompose(g, KCore, Options{})
	h := res.Histogram()
	if len(h) != 3 || h[1] != 3 || h[2] != 3 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestCellLabelsAndVertices(t *testing.T) {
	g := figure2()
	res := Decompose(g, KTruss, Options{})
	if res.CellLabel(0) == "" {
		t.Error("empty label")
	}
	if vs := res.CellVertices(0); len(vs) != 2 {
		t.Errorf("truss cell vertices = %v", vs)
	}
}

func TestBuildHierarchyAPI(t *testing.T) {
	g := figure2()
	res := Decompose(g, KCore, Options{})
	f := BuildHierarchy(g, KCore, res.Kappa)
	if len(f.Roots) != 1 || f.Roots[0].K != 1 {
		t.Fatalf("unexpected forest shape")
	}
}

func TestQueryAPI(t *testing.T) {
	g := PowerLawCluster(200, 4, 0.5, 55)
	exact := Decompose(g, KCore, Options{Algorithm: Peel})
	est := EstimateCoreNumbers(g, []uint32{3, 7}, 3, 0)
	for i, q := range []uint32{3, 7} {
		if est.Tau[i] < exact.Kappa[q] {
			t.Fatal("estimate below κ")
		}
	}
	u, v := g.Edge(0)
	est2 := EstimateTrussNumbers(g, [][2]uint32{{u, v}}, 2, 0)
	if len(est2.Tau) != 1 || est2.Tau[0] < 0 {
		t.Fatalf("truss estimate = %v", est2.Tau)
	}
}

func TestReadEdgeListAPI(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	res := Decompose(g, KCore, Options{})
	for _, k := range res.Kappa {
		if k != 2 {
			t.Fatalf("triangle κ = %v", res.Kappa)
		}
	}
}

func TestStringers(t *testing.T) {
	if KCore.String() == "" || KTruss.String() == "" || Nucleus34.String() == "" {
		t.Error("empty decomposition name")
	}
	if AND.String() != "AND" || SND.String() != "SND" || Peel.String() != "Peel" {
		t.Error("bad algorithm names")
	}
	if Decomposition(99).String() == "" || Algorithm(99).String() == "" {
		t.Error("unknown values should still format")
	}
}

func TestOnSweepAPI(t *testing.T) {
	g := PowerLawCluster(100, 4, 0.5, 57)
	sweeps := 0
	res := Decompose(g, KCore, Options{Algorithm: SND, OnSweep: func(s int, tau []int32) {
		sweeps++
	}})
	if sweeps != res.Sweeps {
		t.Fatalf("callback sweeps %d != %d", sweeps, res.Sweeps)
	}
}

func TestDefaultThreads(t *testing.T) {
	if DefaultThreads() < 1 {
		t.Fatal("DefaultThreads < 1")
	}
}
