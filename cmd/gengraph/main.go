// Command gengraph writes synthetic graphs as edge-list files: either a
// named dataset from the registry or a raw generator.
//
//	gengraph -dataset fb -out fb.txt
//	gengraph -gen rmat -scale 14 -ef 8 -seed 7 -out big.txt
//	gengraph -gen gnm -n 10000 -m 80000 -out er.txt
//	gengraph -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nucleus/internal/dataset"
	"nucleus/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("gengraph", flag.ContinueOnError)
	var (
		ds    = fs.String("dataset", "", "dataset key from the registry (fb, tw, sse, ...)")
		gen   = fs.String("gen", "", "generator: gnm, ba, rmat, ws, plc, communities")
		out   = fs.String("out", "", "output edge-list path (required unless -list)")
		n     = fs.Int("n", 1000, "vertices (gnm, ba, ws, plc)")
		m     = fs.Int("m", 5000, "edges (gnm)")
		k     = fs.Int("k", 4, "attachment/lattice degree (ba, ws, plc)")
		p     = fs.Float64("p", 0.3, "probability parameter (ws rewiring, plc triads, communities p_in)")
		scale = fs.Int("scale", 12, "rmat scale (2^scale vertices)")
		ef    = fs.Int("ef", 8, "rmat edge factor")
		comms = fs.Int("communities", 10, "community count (communities)")
		size  = fs.Int("size", 50, "community size (communities)")
		inter = fs.Int("inter", 500, "inter-community edges (communities)")
		seed  = fs.Int64("seed", 42, "random seed")
		list  = fs.Bool("list", false, "list registry datasets and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, d := range dataset.All() {
			fmt.Fprintf(w, "%-6s %-22s %s\n", d.Key, d.Name, d.Substitute)
		}
		return nil
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	var g *graph.Graph
	switch {
	case *ds != "":
		d := dataset.Get(*ds)
		if d == nil {
			return fmt.Errorf("unknown dataset %q (use -list)", *ds)
		}
		g = d.Graph()
	case *gen != "":
		switch *gen {
		case "gnm":
			g = graph.GnM(*n, *m, *seed)
		case "ba":
			g = graph.BarabasiAlbert(*n, *k, *seed)
		case "rmat":
			g = graph.RMAT(*scale, *ef, 0.57, 0.19, 0.19, *seed)
		case "ws":
			g = graph.WattsStrogatz(*n, *k, *p, *seed)
		case "plc":
			g = graph.PowerLawCluster(*n, *k, *p, *seed)
		case "communities":
			g = graph.PlantedCommunities(*comms, *size, *p, *inter, *seed)
		default:
			return fmt.Errorf("unknown generator %q", *gen)
		}
	default:
		return fmt.Errorf("one of -dataset or -gen is required")
	}

	if err := g.SaveEdgeList(*out); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s: n=%d m=%d\n", *out, g.N(), g.M())
	return nil
}
