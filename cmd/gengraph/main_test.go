package main

import (
	"path/filepath"
	"strings"
	"testing"

	"nucleus/internal/graph"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "facebook") {
		t.Fatalf("missing registry entries: %q", sb.String())
	}
}

func TestRunGenerators(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"-gen", "gnm", "-n", "50", "-m", "100"},
		{"-gen", "ba", "-n", "50", "-k", "3"},
		{"-gen", "rmat", "-scale", "7", "-ef", "4"},
		{"-gen", "ws", "-n", "50", "-k", "3", "-p", "0.1"},
		{"-gen", "plc", "-n", "50", "-k", "3", "-p", "0.5"},
		{"-gen", "communities", "-communities", "3", "-size", "10", "-p", "0.5", "-inter", "10"},
	}
	for i, args := range cases {
		out := filepath.Join(dir, args[1]+".txt")
		var sb strings.Builder
		if err := run(append(args, "-out", out), &sb); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		g, err := graph.LoadEdgeList(out)
		if err != nil {
			t.Fatalf("case %d: reload: %v", i, err)
		}
		if g.M() == 0 {
			t.Fatalf("case %d: empty graph", i)
		}
	}
}

func TestRunDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fb.txt")
	var sb strings.Builder
	if err := run([]string{"-dataset", "fb", "-out", out}, &sb); err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadEdgeList(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1600 {
		t.Fatalf("fb analogue n = %d", g.N())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-out", "/tmp/x.txt"},
		{"-dataset", "nope", "-out", "/tmp/x.txt"},
		{"-gen", "nope", "-out", "/tmp/x.txt"},
		{"-gen", "gnm", "-out", "/nonexistent-dir/x.txt", "-n", "5", "-m", "4"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("no error for %v", args)
		}
	}
}
