package main

import "testing"

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestRunBadAddr(t *testing.T) {
	if err := run([]string{"-addr", "999.999.999.999:bad"}); err == nil {
		t.Fatal("expected listen error")
	}
}
