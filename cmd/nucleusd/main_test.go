package main

import (
	"strings"
	"testing"
)

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestRunRejectsNonPositiveSizes(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "0"},
		{"-workers", "-3"},
		{"-queue", "0"},
		{"-cache", "0"},
		{"-cache", "-1"},
		{"-job-threads", "0"},
		{"-job-history", "-5"},
		{"-max-upload-mb", "0"},
	} {
		err := run(args)
		if err == nil {
			t.Fatalf("%v: expected a validation error", args)
		}
		if !strings.Contains(err.Error(), "positive") {
			t.Fatalf("%v: unhelpful error %q", args, err)
		}
	}
}

func TestRunBadAddr(t *testing.T) {
	if err := run([]string{"-addr", "999.999.999.999:bad"}); err == nil {
		t.Fatal("expected listen error")
	}
}

func TestRunRejectsNegativeIndexBudget(t *testing.T) {
	err := run([]string{"-index-mem-budget", "-1"})
	if err == nil {
		t.Fatal("expected a validation error")
	}
	if !strings.Contains(err.Error(), "index-mem-budget") {
		t.Fatalf("unhelpful error %q", err)
	}
}
