// Command nucleusd serves nucleus decompositions over HTTP/JSON: a graph
// registry, an asynchronous decomposition job queue with an LRU result
// cache, anytime serving of in-flight jobs (progress polling, SSE
// streaming, cooperative cancellation, deadline/sweep-budgeted
// synchronous queries), and synchronous query-driven estimation,
// hierarchy and densest-subgraph endpoints. See docs/API.md for the
// endpoint reference and docs/ANYTIME.md for the anytime model.
//
//	nucleusd -addr :8080 -workers 4 -cache 64
//	nucleusd -addr :8080 -data-dir /var/lib/nucleusd   # durable
//	nucleusd -addr :8080 -progress-every 4             # sample anytime snapshots
//
// With -data-dir, uploads are persisted as binary snapshots and edit
// batches are write-ahead logged before they are applied; on startup the
// server replays snapshot+WAL and recovers every graph at its exact
// pre-restart version, warm-seeding the decomposition caches. See
// docs/OPERATIONS.md for the data-dir layout and recovery semantics.
//
// The server drains running decomposition jobs before exiting on SIGINT or
// SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	root "nucleus"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nucleusd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		workers    = fs.Int("workers", 2, "decomposition worker pool size")
		queueDepth = fs.Int("queue", 64, "max queued (not yet running) jobs")
		cacheSize  = fs.Int("cache", 32, "LRU result cache capacity (entries)")
		jobThreads = fs.Int("job-threads", 1, "default threads per decomposition job")
		jobHistory = fs.Int("job-history", 256, "finished jobs retained for polling")
		maxUpload  = fs.Int64("max-upload-mb", 256, "max graph upload size in MiB")
		indexMem   = fs.Int64("index-mem-budget", 1024, "flat s-clique index budget per instance in MiB (0 disables indexing)")
		dataDir    = fs.String("data-dir", "", "directory for durable graph storage (snapshots + WAL); empty disables persistence")
		walCompact = fs.Int64("wal-compact-threshold", 4, "per-graph WAL size in MiB beyond which the compactor folds the log into a fresh snapshot (0 disables compaction)")
		progEvery  = fs.Int("progress-every", 1, "publish an anytime progress snapshot every k-th sweep of running jobs (0 disables progress publishing)")
		// Workload-aware scheduling (see docs/OPERATIONS.md, "Scheduling &
		// multi-tenancy"): per-tenant quotas and the deadline-less
		// overload-shedding ceiling.
		tenantQuota  = fs.Int("tenant-quota", 0, "max queued jobs per tenant (X-Nucleus-Tenant); 0 means the global -queue bound only")
		maxQueueWait = fs.Duration("max-queue-wait", 0, "shed deadline-less submissions whose predicted queue wait exceeds this (503 + Retry-After); 0 disables the guard")
		// Replication (see docs/REPLICATION.md): the node's fleet role,
		// the primary a replica tails, and per-tenant scheduling weights.
		role         = fs.String("role", "", "replication role: primary, replica, or empty for standalone")
		primary      = fs.String("primary", "", "base URL of the primary this replica pulls from (requires -role replica)")
		pullInterval = fs.Duration("pull-interval", time.Second, "replica pull cadence; requires -role replica")
		generation   = fs.Uint64("generation", 0, "starting cluster generation (0 keeps the default)")
	)
	tenantWeights := map[string]int{}
	fs.Func("tenant-weight", "per-tenant DRR weight as name=K, K >= 1 (repeatable)", func(v string) error {
		name, k, ok := strings.Cut(v, "=")
		if !ok || name == "" {
			return fmt.Errorf("want name=K, got %q", v)
		}
		w, err := strconv.Atoi(k)
		if err != nil || w < 1 {
			return fmt.Errorf("weight for %q must be an integer >= 1, got %q", name, k)
		}
		tenantWeights[name] = w
		return nil
	})
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	// Reject nonsensical sizes outright instead of silently substituting
	// defaults: a -cache 0 that quietly became 32 would mask an operator
	// mistake (and a non-positive capacity used to make the LRU evict its
	// own insertions).
	for _, f := range []struct {
		name  string
		value int
	}{
		{"workers", *workers},
		{"queue", *queueDepth},
		{"cache", *cacheSize},
		{"job-threads", *jobThreads},
		{"job-history", *jobHistory},
	} {
		if f.value <= 0 {
			return fmt.Errorf("-%s must be a positive integer (got %d)", f.name, f.value)
		}
	}
	if *maxUpload <= 0 {
		return fmt.Errorf("-max-upload-mb must be a positive integer (got %d)", *maxUpload)
	}
	if *indexMem < 0 {
		return fmt.Errorf("-index-mem-budget must be >= 0 MiB (got %d; 0 disables indexing)", *indexMem)
	}
	if *walCompact < 0 {
		return fmt.Errorf("-wal-compact-threshold must be >= 0 MiB (got %d; 0 disables compaction)", *walCompact)
	}
	if *progEvery < 0 {
		return fmt.Errorf("-progress-every must be >= 0 (got %d; 0 disables progress publishing)", *progEvery)
	}
	if *tenantQuota < 0 {
		return fmt.Errorf("-tenant-quota must be >= 0 (got %d; 0 applies the global -queue bound only)", *tenantQuota)
	}
	if *tenantQuota > *queueDepth {
		return fmt.Errorf("-tenant-quota (%d) cannot exceed -queue (%d)", *tenantQuota, *queueDepth)
	}
	if *maxQueueWait < 0 {
		return fmt.Errorf("-max-queue-wait must be >= 0 (got %v; 0 disables the overload guard)", *maxQueueWait)
	}
	switch *role {
	case "", root.RolePrimary:
		if *primary != "" {
			return fmt.Errorf("-primary requires -role replica (got -role %q)", *role)
		}
	case root.RoleReplica:
		if *primary == "" {
			return errors.New("-role replica requires -primary")
		}
		if *dataDir == "" {
			return errors.New("-role replica requires -data-dir (a replica must be promotable, so it persists what it applies)")
		}
		if *pullInterval <= 0 {
			return fmt.Errorf("-pull-interval must be positive (got %v)", *pullInterval)
		}
	default:
		return fmt.Errorf("-role must be primary, replica, or empty (got %q)", *role)
	}
	// 0 MiB means "no flat indexes", which the Config encodes as a
	// negative budget (its zero value selects the 1 GiB default).
	indexBudget := *indexMem << 20
	if *indexMem == 0 {
		indexBudget = -1
	}
	// Same sentinel dance for compaction: 0 MiB on the flag means "never
	// compact", which the Config encodes as a negative threshold.
	walThreshold := *walCompact << 20
	if *walCompact == 0 {
		walThreshold = -1
	}
	// And for progress: 0 on the flag disables publishing, which the
	// Config encodes as a negative sampling interval.
	progressEvery := *progEvery
	if progressEvery == 0 {
		progressEvery = -1
	}

	var st root.GraphStore
	if *dataDir != "" {
		var err error
		if st, err = root.OpenFSStore(*dataDir); err != nil {
			return err
		}
		defer func() {
			if err := st.Close(); err != nil {
				log.Printf("closing store: %v", err)
			}
		}()
	}

	srv := root.NewServer(root.ServerConfig{
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		TenantQueueDepth: *tenantQuota,
		MaxQueueWait:     *maxQueueWait,
		CacheSize:        *cacheSize,
		JobThreads:       *jobThreads,
		JobHistory:       *jobHistory,
		MaxUploadBytes:   *maxUpload << 20,
		IndexMemBudget:   indexBudget,
		Store:            st,
		WALCompactBytes:  walThreshold,
		ProgressEvery:    progressEvery,
		TenantWeights:    tenantWeights,
		Replication: root.ReplicationConfig{
			Role:         *role,
			Primary:      *primary,
			Generation:   *generation,
			PullInterval: *pullInterval,
		},
	})
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() {
		durable := "persistence off"
		if *dataDir != "" {
			durable = "data-dir " + *dataDir
		}
		log.Printf("nucleusd listening on %s (workers=%d queue=%d cache=%d, %s)",
			*addr, *workers, *queueDepth, *cacheSize, durable)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	srv.Close() // drain the job queue after the listener stops
	return <-errCh
}
