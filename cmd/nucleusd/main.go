// Command nucleusd serves nucleus decompositions over HTTP/JSON: a graph
// registry, an asynchronous decomposition job queue with an LRU result
// cache, and synchronous query-driven estimation, hierarchy and
// densest-subgraph endpoints. See docs/API.md for the endpoint reference.
//
//	nucleusd -addr :8080 -workers 4 -cache 64
//
// The server drains running decomposition jobs before exiting on SIGINT or
// SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	root "nucleus"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nucleusd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		workers    = fs.Int("workers", 2, "decomposition worker pool size")
		queueDepth = fs.Int("queue", 64, "max queued (not yet running) jobs")
		cacheSize  = fs.Int("cache", 32, "LRU result cache capacity (entries)")
		jobThreads = fs.Int("job-threads", 1, "default threads per decomposition job")
		jobHistory = fs.Int("job-history", 256, "finished jobs retained for polling")
		maxUpload  = fs.Int64("max-upload-mb", 256, "max graph upload size in MiB")
		indexMem   = fs.Int64("index-mem-budget", 1024, "flat s-clique index budget per instance in MiB (0 disables indexing)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	// Reject nonsensical sizes outright instead of silently substituting
	// defaults: a -cache 0 that quietly became 32 would mask an operator
	// mistake (and a non-positive capacity used to make the LRU evict its
	// own insertions).
	for _, f := range []struct {
		name  string
		value int
	}{
		{"workers", *workers},
		{"queue", *queueDepth},
		{"cache", *cacheSize},
		{"job-threads", *jobThreads},
		{"job-history", *jobHistory},
	} {
		if f.value <= 0 {
			return fmt.Errorf("-%s must be a positive integer (got %d)", f.name, f.value)
		}
	}
	if *maxUpload <= 0 {
		return fmt.Errorf("-max-upload-mb must be a positive integer (got %d)", *maxUpload)
	}
	if *indexMem < 0 {
		return fmt.Errorf("-index-mem-budget must be >= 0 MiB (got %d; 0 disables indexing)", *indexMem)
	}
	// 0 MiB means "no flat indexes", which the Config encodes as a
	// negative budget (its zero value selects the 1 GiB default).
	indexBudget := *indexMem << 20
	if *indexMem == 0 {
		indexBudget = -1
	}

	srv := root.NewServer(root.ServerConfig{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		CacheSize:      *cacheSize,
		JobThreads:     *jobThreads,
		JobHistory:     *jobHistory,
		MaxUploadBytes: *maxUpload << 20,
		IndexMemBudget: indexBudget,
	})
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("nucleusd listening on %s (workers=%d queue=%d cache=%d)",
			*addr, *workers, *queueDepth, *cacheSize)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	srv.Close() // drain the job queue after the listener stops
	return <-errCh
}
