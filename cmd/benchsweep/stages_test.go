package main

import (
	"io"
	"strings"
	"testing"
)

// healthyStageRows models a host where build and peel both scale ~2.7x
// at 4 threads while enumerate/index/sweep stay serial-ish.
func healthyStageRows() []stageRow {
	return []stageRow{
		{Stage: stageBuild, Threads: 1, NsPerOp: 8_000_000},
		{Stage: stageEnumerate, Threads: 1, NsPerOp: 5_000_000},
		{Stage: stageIndex, Threads: 1, NsPerOp: 6_000_000},
		{Stage: stagePeel, Threads: 1, NsPerOp: 10_000_000},
		{Stage: stageSweep, Threads: 1, NsPerOp: 40_000_000},
		{Stage: stageBuild, Threads: 4, NsPerOp: 3_000_000},
		{Stage: stageEnumerate, Threads: 4, NsPerOp: 2_000_000},
		{Stage: stageIndex, Threads: 4, NsPerOp: 5_000_000},
		{Stage: stagePeel, Threads: 4, NsPerOp: 3_600_000},
		{Stage: stageSweep, Threads: 4, NsPerOp: 15_000_000},
	}
}

func TestBuildStages(t *testing.T) {
	rows := healthyStageRows()

	sec, err := buildStages(rows, 3, 1.5, 8)
	if err != nil {
		t.Fatalf("gate failed on healthy rows: %v", err)
	}
	// (8+10)/(3+3.6) = 18/6.6 ≈ 2.73.
	if sec.EndToEndSpeedupAt4 < 2.7 || sec.EndToEndSpeedupAt4 > 2.8 {
		t.Fatalf("endToEndSpeedupAt4 = %.2f, want ~2.73", sec.EndToEndSpeedupAt4)
	}
	if sec.GoMaxProcsLimited || sec.Note != "" {
		t.Fatalf("flagged limited on an 8-proc host: %+v", sec)
	}

	// Below the floor on a capable host: gate fires.
	if _, err := buildStages(rows, 3, 10, 8); err == nil {
		t.Fatal("e2e speedup gate did not fire at min=10")
	}

	// Same numbers on a 1-proc host: rows recorded, gate skipped.
	sec, err = buildStages(rows, 3, 10, 1)
	if err != nil {
		t.Fatalf("gate fired on a GOMAXPROCS-limited host: %v", err)
	}
	if !sec.GoMaxProcsLimited || sec.Note == "" {
		t.Fatalf("limited host not flagged: %+v", sec)
	}

	// Gate armed but threads=4 not swept: explicit error, not silent pass.
	var only1 []stageRow
	for _, r := range rows {
		if r.Threads == 1 {
			only1 = append(only1, r)
		}
	}
	if _, err := buildStages(only1, 3, 1.5, 8); err == nil {
		t.Fatal("min-e2e-speedup with no threads=4 rows passed")
	}
}

func TestCheckStageRegress(t *testing.T) {
	base := &artifact{GoMaxProcs: 8, Stages: &stageBreakdown{Rows: healthyStageRows()}}

	// Identical rows: within tolerance.
	cur := &stageBreakdown{Rows: healthyStageRows()}
	if err := checkStageRegress(cur, base, 0.2, 8, io.Discard); err != nil {
		t.Fatalf("identical rows flagged as regression: %v", err)
	}

	// One stage 50% slower: gate fires and names it.
	slow := healthyStageRows()
	slow[3].NsPerOp *= 1.5 // peel at 1 thread
	err := checkStageRegress(&stageBreakdown{Rows: slow}, base, 0.2, 8, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "peel at 1 threads") {
		t.Fatalf("50%% peel regression not caught: %v", err)
	}

	// Same slowdown within a looser tolerance: passes.
	if err := checkStageRegress(&stageBreakdown{Rows: slow}, base, 0.6, 8, io.Discard); err != nil {
		t.Fatalf("regression within tolerance flagged: %v", err)
	}

	// Baseline from a different GOMAXPROCS: skipped, with a note.
	var out strings.Builder
	if err := checkStageRegress(&stageBreakdown{Rows: slow}, base, 0.2, 4, &out); err != nil {
		t.Fatalf("cross-host baseline not skipped: %v", err)
	}
	if !strings.Contains(out.String(), "regression gate skipped") {
		t.Fatalf("skip not reported: %q", out.String())
	}

	// Baseline predating the stages schema: skipped.
	if err := checkStageRegress(cur, &artifact{GoMaxProcs: 8}, 0.2, 8, io.Discard); err != nil {
		t.Fatalf("schema-less baseline not skipped: %v", err)
	}
}

// TestMeasureStagesSmoke runs the real pipeline once per stage: every
// stage must produce a positive wall time and the rows must come out in
// (threads, stage) order for the artifact to be diffable.
func TestMeasureStagesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline on the bundled dataset")
	}
	rows := measureStages([]int{1}, 1, io.Discard)
	want := []string{stageBuild, stageEnumerate, stageIndex, stagePeel, stageSweep}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i, r := range rows {
		if r.Stage != want[i] || r.Threads != 1 {
			t.Fatalf("row %d = %+v, want stage %q at 1 thread", i, r, want[i])
		}
		if r.NsPerOp <= 0 {
			t.Fatalf("stage %q measured %v ns/op", r.Stage, r.NsPerOp)
		}
	}
}
