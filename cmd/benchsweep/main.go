// Command benchsweep is the benchmark smoke harness for the sweep kernels:
// it runs the localhi benchmarks with -benchmem, parses the results, and
// writes a machine-readable BENCH_sweep.json artifact (ns/op, B/op,
// allocs/op, the work-visits/op cost metric, and the sweeps/op +
// updates/op convergence metrics per benchmark, plus the
// indexed-vs-baseline SND speedup; the header records numCPU and
// GOMAXPROCS so runs on cgroup-limited machines are comparable). It exits non-zero when the fused
// steady-state kernel benchmark reports any allocations — the
// zero-allocation claim is a hard regression gate — or when the measured
// speedup falls below -min-speedup (0 disables the speedup gate, e.g. on
// noisy shared CI runners).
//
// With -workers (on by default) it additionally sweeps the parallel
// bucket-peeling benchmark in internal/peel across worker counts and
// records per-worker ns/op plus speedup-vs-1-worker rows under
// "parallelPeel". The benchmark itself gates on parallel == sequential κ
// before timing. The -min-parallel-speedup gate compares the speedup at 4
// workers and is only armed when GOMAXPROCS allows 4-way parallelism —
// on cgroup-limited single-core machines the rows are still recorded,
// flagged goMaxProcsLimited, and the gate is skipped rather than
// reporting a fake pass or a spurious failure.
//
// With -stages (on by default) it also records the per-stage wall-time
// breakdown of the decomposition pipeline — CSR build, clique
// enumeration, index construction, bucket peeling, h-index sweeping — at
// each requested thread count under "stages", the Amdahl accounting
// behind docs/PERFORMANCE.md. Two more gates ride on it: -min-e2e-speedup
// fails when the end-to-end build+peel speedup at 4 threads falls below
// the floor (GOMAXPROCS-aware skip, like the peel gate), and
// -stage-baseline/-stage-regress fail when any stage's wall time
// regresses by more than the allowed fraction against a committed
// artifact measured at the same GOMAXPROCS.
//
// With -sched (on by default) it also runs the workload-aware job
// scheduler's dispatch benchmarks in internal/sched and records their
// ns/op and allocs/op under "scheduler". The gate is hard, like the
// fused-kernel one: both the single-item dispatch cycle and the
// standing-backlog variant must report exactly 0 allocs/op, because the
// scheduler sits in front of every job the server runs.
//
//	benchsweep -out BENCH_sweep.json -benchtime 1x -workers 1,2,4 \
//	    -stages 1,4 -stage-baseline BENCH_sweep.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// The benchmark names the gates key on (see internal/localhi and
// internal/peel).
const (
	baselineBench = "BenchmarkSndTruss"
	indexedBench  = "BenchmarkSndTrussIndexed"
	fusedBench    = "BenchmarkSweepKernelFused"

	parallelPkg   = "./internal/peel"
	parallelBench = "BenchmarkPeelScalingTruss"

	schedPkg          = "./internal/sched"
	schedDispatchName = "BenchmarkSchedulerDispatch"
	schedBacklogName  = "BenchmarkSchedulerBacklogDispatch"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name            string   `json:"name"`
	Iterations      int64    `json:"iterations"`
	NsPerOp         float64  `json:"nsPerOp"`
	BytesPerOp      *float64 `json:"bytesPerOp,omitempty"`
	AllocsPerOp     *float64 `json:"allocsPerOp,omitempty"`
	WorkVisitsPerOp *float64 `json:"workVisitsPerOp,omitempty"`
	// SweepsPerOp and UpdatesPerOp are the convergence-metric columns of
	// the full-decomposition benchmarks (sweeps run and τ decrements
	// applied per decomposition) — the reproducible source of the anytime
	// progress numbers in docs/PERFORMANCE.md.
	SweepsPerOp  *float64 `json:"sweepsPerOp,omitempty"`
	UpdatesPerOp *float64 `json:"updatesPerOp,omitempty"`
}

// artifact is the BENCH_sweep.json schema.
type artifact struct {
	GeneratedAt time.Time `json:"generatedAt"`
	GoOS        string    `json:"goos"`
	GoArch      string    `json:"goarch"`
	NumCPU      int       `json:"numCPU"`
	// GoMaxProcs is runtime.GOMAXPROCS(0) at measurement time: on
	// cgroup-limited CI runners it is the actual parallelism available,
	// which numCPU alone misreports.
	GoMaxProcs int           `json:"goMaxProcs"`
	Package    string        `json:"package"`
	Benchmarks []benchResult `json:"benchmarks"`
	// SpeedupSndIndexed is baseline ns/op divided by indexed ns/op for the
	// full SND decomposition on the bundled truss dataset.
	SpeedupSndIndexed float64 `json:"speedupSndIndexed"`
	// FusedSteadyStateAllocsPerOp is the allocs/op of the warmed fused
	// sweep kernel; the smoke gate requires exactly 0.
	FusedSteadyStateAllocsPerOp float64 `json:"fusedSteadyStateAllocsPerOp"`
	// ParallelPeel holds the multi-core scaling rows of the parallel
	// bucket-peeling engine; nil when the sweep is disabled (-workers '').
	ParallelPeel *parallelPeel `json:"parallelPeel,omitempty"`
	// Stages holds the per-stage pipeline wall-time breakdown
	// (build/enumerate/index/peel/sweep per thread count) and the
	// end-to-end build+peel speedup; nil when disabled (-stages '').
	Stages *stageBreakdown `json:"stages,omitempty"`
	// Scheduler holds the dispatch hot-path numbers of the workload-aware
	// job scheduler; nil when disabled (-sched=false). The smoke gate
	// requires exactly 0 allocs/op on both rows: scheduling replaced a
	// bare channel in front of every job the server runs, and must not
	// tax it.
	Scheduler *schedulerSection `json:"scheduler,omitempty"`
}

// schedulerSection is the "scheduler" artifact section: the single-item
// Enqueue→TryNext→Done cycle and the standing-backlog variant that
// exercises the DRR rotation and EDF heap repair.
type schedulerSection struct {
	DispatchNsPerOp     float64 `json:"dispatchNsPerOp"`
	DispatchAllocsPerOp float64 `json:"dispatchAllocsPerOp"`
	BacklogNsPerOp      float64 `json:"backlogNsPerOp"`
	BacklogAllocsPerOp  float64 `json:"backlogAllocsPerOp"`
}

// buildSched assembles the scheduler section and enforces the
// zero-allocation dispatch gate.
func buildSched(results []benchResult) (*schedulerSection, error) {
	sec := &schedulerSection{}
	for _, row := range []struct {
		name   string
		ns     *float64
		allocs *float64
	}{
		{schedDispatchName, &sec.DispatchNsPerOp, &sec.DispatchAllocsPerOp},
		{schedBacklogName, &sec.BacklogNsPerOp, &sec.BacklogAllocsPerOp},
	} {
		res := find(results, row.name)
		if res == nil {
			return sec, fmt.Errorf("benchmark %s missing from output", row.name)
		}
		if res.AllocsPerOp == nil {
			return sec, fmt.Errorf("benchmark %s reported no allocs/op (ran without -benchmem?)", row.name)
		}
		*row.ns = res.NsPerOp
		*row.allocs = *res.AllocsPerOp
		if *res.AllocsPerOp != 0 {
			return sec, fmt.Errorf("scheduler dispatch hot path allocates: %s at %v allocs/op (want 0)", row.name, *res.AllocsPerOp)
		}
	}
	return sec, nil
}

// parallelRow is one worker count of the parallel-peel scaling sweep.
type parallelRow struct {
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"nsPerOp"`
	// Speedup is the 1-worker ns/op divided by this row's ns/op.
	Speedup float64 `json:"speedup"`
}

// parallelPeel is the "parallelPeel" artifact section.
type parallelPeel struct {
	Benchmark string        `json:"benchmark"`
	Rows      []parallelRow `json:"rows"`
	// SpeedupAt4 is the speedup of the workers=4 row (0 when not swept).
	SpeedupAt4 float64 `json:"speedupAt4,omitempty"`
	// GoMaxProcsLimited is true when GOMAXPROCS < 4 at measurement time:
	// the host cannot physically exhibit 4-way scaling, so the rows
	// measure barrier overhead, not parallel speedup, and the
	// -min-parallel-speedup gate is skipped.
	GoMaxProcsLimited bool   `json:"goMaxProcsLimited"`
	Note              string `json:"note,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parseBench extracts benchmark results from `go test -bench` output.
// Each line is "Name-P  iters  v1 unit1  v2 unit2 ..."; unknown units are
// ignored so additional ReportMetric calls never break the parser.
func parseBench(r io.Reader) ([]benchResult, error) {
	var out []benchResult
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := benchResult{Name: m[1], Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: bad value %q", sc.Text(), fields[i])
			}
			val := v
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = &val
			case "allocs/op":
				res.AllocsPerOp = &val
			case "work-visits/op":
				res.WorkVisitsPerOp = &val
			case "sweeps/op":
				res.SweepsPerOp = &val
			case "updates/op":
				res.UpdatesPerOp = &val
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// find returns the result with the given bare name (no -P suffix).
func find(results []benchResult, name string) *benchResult {
	for i := range results {
		if results[i].Name == name {
			return &results[i]
		}
	}
	return nil
}

// buildArtifact assembles the JSON payload and enforces the gates.
func buildArtifact(results []benchResult, pkg string, minSpeedup float64) (*artifact, error) {
	art := &artifact{
		GeneratedAt: time.Now().UTC(),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Package:     pkg,
		Benchmarks:  results,
	}
	fused := find(results, fusedBench)
	if fused == nil {
		return art, fmt.Errorf("benchmark %s missing from output", fusedBench)
	}
	if fused.AllocsPerOp == nil {
		return art, fmt.Errorf("benchmark %s reported no allocs/op (ran without -benchmem?)", fusedBench)
	}
	art.FusedSteadyStateAllocsPerOp = *fused.AllocsPerOp
	if *fused.AllocsPerOp != 0 {
		return art, fmt.Errorf("fused sweep kernel allocates in the steady state: %v allocs/op (want 0)", *fused.AllocsPerOp)
	}
	base, idx := find(results, baselineBench), find(results, indexedBench)
	if base == nil || idx == nil {
		return art, fmt.Errorf("speedup pair %s / %s missing from output", baselineBench, indexedBench)
	}
	if idx.NsPerOp > 0 {
		art.SpeedupSndIndexed = base.NsPerOp / idx.NsPerOp
	}
	if minSpeedup > 0 && art.SpeedupSndIndexed < minSpeedup {
		return art, fmt.Errorf("indexed SND speedup %.2fx below the -min-speedup gate %.2fx", art.SpeedupSndIndexed, minSpeedup)
	}
	return art, nil
}

// parseCounts parses a comma-separated count list ("1,2,4") — the shared
// format of the -workers and -stages flags — into positive ints.
func parseCounts(flagName, spec string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("%s: bad count %q", flagName, f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no counts in %q", flagName, spec)
	}
	return out, nil
}

// buildParallel assembles the parallelPeel section from the scaling
// benchmark's sub-results and enforces the -min-parallel-speedup gate.
// The gate compares the workers=4 speedup and is armed only when the host
// can actually run 4 workers in parallel (gomaxprocs >= 4); otherwise the
// rows are recorded with GoMaxProcsLimited set.
func buildParallel(results []benchResult, workers []int, minParallel float64, gomaxprocs int) (*parallelPeel, error) {
	sec := &parallelPeel{Benchmark: parallelBench}
	var base float64
	for _, w := range workers {
		name := fmt.Sprintf("%s/workers=%d", parallelBench, w)
		res := find(results, name)
		if res == nil {
			return sec, fmt.Errorf("benchmark %s missing from output", name)
		}
		row := parallelRow{Workers: w, NsPerOp: res.NsPerOp}
		if w == 1 {
			base = res.NsPerOp
		}
		if base > 0 && res.NsPerOp > 0 {
			row.Speedup = base / res.NsPerOp
		}
		if w == 4 {
			sec.SpeedupAt4 = row.Speedup
		}
		sec.Rows = append(sec.Rows, row)
	}
	if gomaxprocs < 4 {
		sec.GoMaxProcsLimited = true
		sec.Note = fmt.Sprintf("GOMAXPROCS=%d at measurement time: rows bound barrier overhead, not speedup; scaling numbers come from multi-core runs (CI)", gomaxprocs)
	}
	if minParallel > 0 && !sec.GoMaxProcsLimited {
		if sec.SpeedupAt4 == 0 {
			return sec, fmt.Errorf("-min-parallel-speedup set but workers=4 (and/or workers=1) not swept")
		}
		if sec.SpeedupAt4 < minParallel {
			return sec, fmt.Errorf("parallel peel speedup at 4 workers %.2fx below the -min-parallel-speedup gate %.2fx", sec.SpeedupAt4, minParallel)
		}
	}
	return sec, nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out         = fs.String("out", "BENCH_sweep.json", "artifact output path")
		pkg         = fs.String("pkg", "./internal/localhi", "package holding the sweep benchmarks")
		benchRe     = fs.String("bench", "Truss|SweepKernel", "benchmark regex passed to go test")
		benchtime   = fs.String("benchtime", "", "go test -benchtime (empty = default)")
		minSpeedup  = fs.Float64("min-speedup", 0, "fail below this indexed-SND speedup (0 disables)")
		workers     = fs.String("workers", "1,2,4", "worker counts for the parallel peel sweep ('' disables)")
		minParallel = fs.Float64("min-parallel-speedup", 0, "fail below this parallel-peel speedup at 4 workers (0 disables; skipped when GOMAXPROCS < 4)")
		// The scaling rows feed a ratio gate, so unlike the -benchtime 1x
		// kernel smoke they need several iterations to be stable; the peel
		// benchmark is ~10ms/op, so the go default (1s) costs seconds.
		parallelBenchtime = fs.String("parallel-benchtime", "", "go test -benchtime for the parallel peel sweep (empty = go default)")
		stagesSpec        = fs.String("stages", "1,4", "thread counts for the per-stage pipeline breakdown ('' disables)")
		stageReps         = fs.Int("stage-reps", 3, "repetitions per stage timing; each row records the best")
		minE2E            = fs.Float64("min-e2e-speedup", 0, "fail below this end-to-end build+peel speedup at 4 threads (0 disables; skipped when GOMAXPROCS < 4)")
		stageBaseline     = fs.String("stage-baseline", "", "committed BENCH_sweep.json to compare stage wall times against ('' disables; armed only at matching GOMAXPROCS)")
		stageRegress      = fs.Float64("stage-regress", 0.2, "max fractional per-stage slowdown vs -stage-baseline")
		sched             = fs.Bool("sched", true, "run the scheduler dispatch benchmarks and gate on 0 allocs/op")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Read the baseline before anything can overwrite it: -out and
	// -stage-baseline usually name the same committed artifact.
	var baseline *artifact
	if *stageBaseline != "" {
		data, err := os.ReadFile(*stageBaseline)
		if err != nil {
			return fmt.Errorf("-stage-baseline: %w", err)
		}
		baseline = new(artifact)
		if err := json.Unmarshal(data, baseline); err != nil {
			return fmt.Errorf("-stage-baseline %s: %w", *stageBaseline, err)
		}
	}

	raw, err := runGoBench(stdout, stderr, nil, *pkg, *benchRe, *benchtime)
	if err != nil {
		return err
	}
	results, err := parseBench(strings.NewReader(raw))
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines matched %q in %s", *benchRe, *pkg)
	}
	art, gateErr := buildArtifact(results, *pkg, *minSpeedup)

	if *workers != "" {
		ws, err := parseCounts("-workers", *workers)
		if err != nil {
			return err
		}
		env := append(os.Environ(), "NUCLEUS_PEEL_WORKERS="+*workers)
		praw, err := runGoBench(stdout, stderr, env, parallelPkg, parallelBench+"$", *parallelBenchtime)
		if err != nil {
			return err
		}
		presults, err := parseBench(strings.NewReader(praw))
		if err != nil {
			return err
		}
		sec, perr := buildParallel(presults, ws, *minParallel, runtime.GOMAXPROCS(0))
		art.ParallelPeel = sec
		if gateErr == nil {
			gateErr = perr
		}
	}

	if *stagesSpec != "" {
		ts, err := parseCounts("-stages", *stagesSpec)
		if err != nil {
			return err
		}
		rows := measureStages(ts, *stageReps, stdout)
		sec, serr := buildStages(rows, *stageReps, *minE2E, runtime.GOMAXPROCS(0))
		art.Stages = sec
		if gateErr == nil {
			gateErr = serr
		}
		if baseline != nil {
			if err := checkStageRegress(sec, baseline, *stageRegress, runtime.GOMAXPROCS(0), stdout); err != nil && gateErr == nil {
				gateErr = err
			}
		}
	}

	if *sched {
		sraw, err := runGoBench(stdout, stderr, nil, schedPkg, "SchedulerDispatch|SchedulerBacklogDispatch", *benchtime)
		if err != nil {
			return err
		}
		sresults, err := parseBench(strings.NewReader(sraw))
		if err != nil {
			return err
		}
		sec, serr := buildSched(sresults)
		art.Scheduler = sec
		if gateErr == nil {
			gateErr = serr
		}
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d benchmarks, indexed SND speedup %.2fx, fused allocs/op %v)\n",
		*out, len(art.Benchmarks), art.SpeedupSndIndexed, art.FusedSteadyStateAllocsPerOp)
	if pp := art.ParallelPeel; pp != nil {
		limited := ""
		if pp.GoMaxProcsLimited {
			limited = " (GOMAXPROCS-limited; gate skipped)"
		}
		fmt.Fprintf(stdout, "parallel peel: %d worker counts, speedup at 4 workers %.2fx%s\n",
			len(pp.Rows), pp.SpeedupAt4, limited)
	}
	if st := art.Stages; st != nil {
		limited := ""
		if st.GoMaxProcsLimited {
			limited = " (GOMAXPROCS-limited; gate skipped)"
		}
		fmt.Fprintf(stdout, "stages: %d rows on %q, end-to-end build+peel speedup at 4 threads %.2fx%s\n",
			len(st.Rows), st.Dataset, st.EndToEndSpeedupAt4, limited)
	}
	if sc := art.Scheduler; sc != nil {
		fmt.Fprintf(stdout, "scheduler: dispatch %.1f ns/op (%v allocs/op), backlog %.1f ns/op (%v allocs/op)\n",
			sc.DispatchNsPerOp, sc.DispatchAllocsPerOp, sc.BacklogNsPerOp, sc.BacklogAllocsPerOp)
	}
	return gateErr
}

// runGoBench executes one `go test -bench` invocation, echoes the raw
// table to stdout (the human-readable half of the artifact), and returns
// it for parsing.
func runGoBench(stdout, stderr io.Writer, env []string, pkg, benchRe, benchtime string) (string, error) {
	cmdArgs := []string{"test", pkg, "-run", "^$", "-bench", benchRe, "-benchmem"}
	if benchtime != "" {
		cmdArgs = append(cmdArgs, "-benchtime", benchtime)
	}
	cmd := exec.Command("go", cmdArgs...)
	cmd.Env = env
	cmd.Stderr = stderr
	raw, err := cmd.Output()
	fmt.Fprint(stdout, string(raw))
	if err != nil {
		return "", fmt.Errorf("go %s: %w", strings.Join(cmdArgs, " "), err)
	}
	return string(raw), nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
}
