// Command benchsweep is the benchmark smoke harness for the sweep kernels:
// it runs the localhi benchmarks with -benchmem, parses the results, and
// writes a machine-readable BENCH_sweep.json artifact (ns/op, B/op,
// allocs/op, the work-visits/op cost metric, and the sweeps/op +
// updates/op convergence metrics per benchmark, plus the
// indexed-vs-baseline SND speedup; the header records numCPU and
// GOMAXPROCS so runs on cgroup-limited machines are comparable). It exits non-zero when the fused
// steady-state kernel benchmark reports any allocations — the
// zero-allocation claim is a hard regression gate — or when the measured
// speedup falls below -min-speedup (0 disables the speedup gate, e.g. on
// noisy shared CI runners).
//
//	benchsweep -out BENCH_sweep.json -benchtime 1x
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// The benchmark names the gates key on (see internal/localhi).
const (
	baselineBench = "BenchmarkSndTruss"
	indexedBench  = "BenchmarkSndTrussIndexed"
	fusedBench    = "BenchmarkSweepKernelFused"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name            string   `json:"name"`
	Iterations      int64    `json:"iterations"`
	NsPerOp         float64  `json:"nsPerOp"`
	BytesPerOp      *float64 `json:"bytesPerOp,omitempty"`
	AllocsPerOp     *float64 `json:"allocsPerOp,omitempty"`
	WorkVisitsPerOp *float64 `json:"workVisitsPerOp,omitempty"`
	// SweepsPerOp and UpdatesPerOp are the convergence-metric columns of
	// the full-decomposition benchmarks (sweeps run and τ decrements
	// applied per decomposition) — the reproducible source of the anytime
	// progress numbers in docs/PERFORMANCE.md.
	SweepsPerOp  *float64 `json:"sweepsPerOp,omitempty"`
	UpdatesPerOp *float64 `json:"updatesPerOp,omitempty"`
}

// artifact is the BENCH_sweep.json schema.
type artifact struct {
	GeneratedAt time.Time `json:"generatedAt"`
	GoOS        string    `json:"goos"`
	GoArch      string    `json:"goarch"`
	NumCPU      int       `json:"numCPU"`
	// GoMaxProcs is runtime.GOMAXPROCS(0) at measurement time: on
	// cgroup-limited CI runners it is the actual parallelism available,
	// which numCPU alone misreports.
	GoMaxProcs int           `json:"goMaxProcs"`
	Package    string        `json:"package"`
	Benchmarks []benchResult `json:"benchmarks"`
	// SpeedupSndIndexed is baseline ns/op divided by indexed ns/op for the
	// full SND decomposition on the bundled truss dataset.
	SpeedupSndIndexed float64 `json:"speedupSndIndexed"`
	// FusedSteadyStateAllocsPerOp is the allocs/op of the warmed fused
	// sweep kernel; the smoke gate requires exactly 0.
	FusedSteadyStateAllocsPerOp float64 `json:"fusedSteadyStateAllocsPerOp"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parseBench extracts benchmark results from `go test -bench` output.
// Each line is "Name-P  iters  v1 unit1  v2 unit2 ..."; unknown units are
// ignored so additional ReportMetric calls never break the parser.
func parseBench(r io.Reader) ([]benchResult, error) {
	var out []benchResult
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := benchResult{Name: m[1], Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: bad value %q", sc.Text(), fields[i])
			}
			val := v
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = &val
			case "allocs/op":
				res.AllocsPerOp = &val
			case "work-visits/op":
				res.WorkVisitsPerOp = &val
			case "sweeps/op":
				res.SweepsPerOp = &val
			case "updates/op":
				res.UpdatesPerOp = &val
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// find returns the result with the given bare name (no -P suffix).
func find(results []benchResult, name string) *benchResult {
	for i := range results {
		if results[i].Name == name {
			return &results[i]
		}
	}
	return nil
}

// buildArtifact assembles the JSON payload and enforces the gates.
func buildArtifact(results []benchResult, pkg string, minSpeedup float64) (*artifact, error) {
	art := &artifact{
		GeneratedAt: time.Now().UTC(),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Package:     pkg,
		Benchmarks:  results,
	}
	fused := find(results, fusedBench)
	if fused == nil {
		return art, fmt.Errorf("benchmark %s missing from output", fusedBench)
	}
	if fused.AllocsPerOp == nil {
		return art, fmt.Errorf("benchmark %s reported no allocs/op (ran without -benchmem?)", fusedBench)
	}
	art.FusedSteadyStateAllocsPerOp = *fused.AllocsPerOp
	if *fused.AllocsPerOp != 0 {
		return art, fmt.Errorf("fused sweep kernel allocates in the steady state: %v allocs/op (want 0)", *fused.AllocsPerOp)
	}
	base, idx := find(results, baselineBench), find(results, indexedBench)
	if base == nil || idx == nil {
		return art, fmt.Errorf("speedup pair %s / %s missing from output", baselineBench, indexedBench)
	}
	if idx.NsPerOp > 0 {
		art.SpeedupSndIndexed = base.NsPerOp / idx.NsPerOp
	}
	if minSpeedup > 0 && art.SpeedupSndIndexed < minSpeedup {
		return art, fmt.Errorf("indexed SND speedup %.2fx below the -min-speedup gate %.2fx", art.SpeedupSndIndexed, minSpeedup)
	}
	return art, nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out        = fs.String("out", "BENCH_sweep.json", "artifact output path")
		pkg        = fs.String("pkg", "./internal/localhi", "package holding the sweep benchmarks")
		benchRe    = fs.String("bench", "Truss|SweepKernel", "benchmark regex passed to go test")
		benchtime  = fs.String("benchtime", "", "go test -benchtime (empty = default)")
		minSpeedup = fs.Float64("min-speedup", 0, "fail below this indexed-SND speedup (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cmdArgs := []string{"test", *pkg, "-run", "^$", "-bench", *benchRe, "-benchmem"}
	if *benchtime != "" {
		cmdArgs = append(cmdArgs, "-benchtime", *benchtime)
	}
	cmd := exec.Command("go", cmdArgs...)
	cmd.Stderr = stderr
	raw, err := cmd.Output()
	// Show the raw benchmark table either way; it is the human-readable
	// half of the artifact.
	fmt.Fprint(stdout, string(raw))
	if err != nil {
		return fmt.Errorf("go %s: %w", strings.Join(cmdArgs, " "), err)
	}

	results, err := parseBench(strings.NewReader(string(raw)))
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines matched %q in %s", *benchRe, *pkg)
	}
	art, gateErr := buildArtifact(results, *pkg, *minSpeedup)
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d benchmarks, indexed SND speedup %.2fx, fused allocs/op %v)\n",
		*out, len(art.Benchmarks), art.SpeedupSndIndexed, art.FusedSteadyStateAllocsPerOp)
	return gateErr
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
}
