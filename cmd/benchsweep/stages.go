package main

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"nucleus/internal/cliques"
	"nucleus/internal/dataset"
	"nucleus/internal/graph"
	"nucleus/internal/localhi"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

// ---------------------------------------------------------------------------
// Per-stage pipeline breakdown.
//
// The decomposition pipeline is a chain of O(n+m) stages — CSR build,
// clique enumeration, flat-index construction, bucket peeling, h-index
// sweeping — and the end-to-end speedup is governed by the slowest serial
// link (Amdahl), not by any one kernel's scaling number. This section
// times each stage in isolation on the bundled truss dataset at each
// requested thread count, so the artifact records where the wall-clock
// time actually goes and which stage caps the speedup. Unlike the kernel
// benchmarks above, these rows are measured in-process (best-of-N wall
// time) rather than through `go test -bench`: the stages share one
// generated dataset and one prebuilt instance, which keeps a full sweep
// in the low seconds.

// Stage names, in pipeline execution order.
const (
	stageBuild     = "build"
	stageEnumerate = "enumerate"
	stageIndex     = "index"
	stagePeel      = "peel"
	stageSweep     = "sweep"
)

// stageDataset is the graph every stage row is measured on: the bundled
// "fb" analogue, the same dataset the kernel benchmarks use.
const stageDataset = "fb"

// stageRow is one (stage, thread count) wall-time measurement.
type stageRow struct {
	Stage   string  `json:"stage"`
	Threads int     `json:"threads"`
	NsPerOp float64 `json:"nsPerOp"`
}

// stageBreakdown is the "stages" artifact section.
type stageBreakdown struct {
	Dataset string     `json:"dataset"`
	Reps    int        `json:"reps"`
	Rows    []stageRow `json:"rows"`
	// EndToEndSpeedupAt4 is (build+peel at 1 thread) / (build+peel at 4
	// threads): the speedup of the stages this change parallelized, end to
	// end, not per kernel. 0 when threads 1 and 4 were not both swept.
	EndToEndSpeedupAt4 float64 `json:"endToEndSpeedupAt4,omitempty"`
	// GoMaxProcsLimited is true when GOMAXPROCS < 4 at measurement time:
	// the host cannot physically exhibit 4-way scaling, so the 4-thread
	// rows bound coordination overhead and the -min-e2e-speedup gate is
	// skipped rather than reporting a spurious failure.
	GoMaxProcsLimited bool   `json:"goMaxProcsLimited"`
	Note              string `json:"note,omitempty"`
}

// measureStages times every pipeline stage at every requested thread
// count: best-of-reps wall time, one generated dataset, one prebuilt
// indexed instance (so the peel and sweep rows time only their own stage,
// not index construction). Each row is echoed to stdout as it lands.
func measureStages(threadsList []int, reps int, stdout io.Writer) []stageRow {
	g := dataset.Get(stageDataset).Graph()
	edges := g.Edges()
	n := g.N()
	inst := nucleus.NewIndexedTruss(g, runtime.GOMAXPROCS(0))
	stages := []struct {
		name string
		run  func(threads int)
	}{
		{stageBuild, func(t int) { graph.BuildThreads(n, edges, t) }},
		{stageEnumerate, func(t int) { cliques.KCliquesFlat(g, 3, t) }},
		{stageIndex, func(t int) { cliques.BuildTriangleIndexThreads(g, t) }},
		{stagePeel, func(t int) { peel.RunThreads(inst, t) }},
		{stageSweep, func(t int) { localhi.Snd(inst, localhi.Options{Threads: t}) }},
	}
	var rows []stageRow
	for _, th := range threadsList {
		for _, st := range stages {
			var best time.Duration
			for r := 0; r < reps; r++ {
				start := time.Now()
				st.run(th)
				if d := time.Since(start); r == 0 || d < best {
					best = d
				}
			}
			rows = append(rows, stageRow{Stage: st.name, Threads: th, NsPerOp: float64(best.Nanoseconds())})
			fmt.Fprintf(stdout, "stage %-9s threads=%d %14d ns/op (best of %d)\n", st.name, th, best.Nanoseconds(), reps)
		}
	}
	return rows
}

// e2eNs sums the build and peel rows at the given thread count — the
// end-to-end cost of the stages the parallel spine covers. 0 when either
// row is missing.
func e2eNs(rows []stageRow, threads int) float64 {
	var build, peelNs float64
	for _, r := range rows {
		if r.Threads != threads {
			continue
		}
		switch r.Stage {
		case stageBuild:
			build = r.NsPerOp
		case stagePeel:
			peelNs = r.NsPerOp
		}
	}
	if build == 0 || peelNs == 0 {
		return 0
	}
	return build + peelNs
}

// buildStages assembles the stages artifact section and enforces the
// -min-e2e-speedup gate. Like the parallel-peel gate, it is armed only
// when the host can actually run 4 threads in parallel; on
// GOMAXPROCS-limited machines the rows are recorded and flagged instead.
func buildStages(rows []stageRow, reps int, minE2E float64, gomaxprocs int) (*stageBreakdown, error) {
	sec := &stageBreakdown{Dataset: stageDataset, Reps: reps, Rows: rows}
	base, at4 := e2eNs(rows, 1), e2eNs(rows, 4)
	if base > 0 && at4 > 0 {
		sec.EndToEndSpeedupAt4 = base / at4
	}
	if gomaxprocs < 4 {
		sec.GoMaxProcsLimited = true
		sec.Note = fmt.Sprintf("GOMAXPROCS=%d at measurement time: 4-thread rows bound coordination overhead, not speedup; scaling numbers come from multi-core runs (CI)", gomaxprocs)
	}
	if minE2E > 0 && !sec.GoMaxProcsLimited {
		if sec.EndToEndSpeedupAt4 == 0 {
			return sec, fmt.Errorf("-min-e2e-speedup set but threads 1 and/or 4 not swept")
		}
		if sec.EndToEndSpeedupAt4 < minE2E {
			return sec, fmt.Errorf("end-to-end (build+peel) speedup at 4 threads %.2fx below the -min-e2e-speedup gate %.2fx", sec.EndToEndSpeedupAt4, minE2E)
		}
	}
	return sec, nil
}

// checkStageRegress compares this run's stage rows against the committed
// artifact and fails when any stage slowed down by more than maxRegress
// (fractional, e.g. 0.2 = 20%). Wall-time comparisons across different
// hosts are meaningless, so the gate is armed only when the baseline was
// measured at the same GOMAXPROCS; otherwise (or when the baseline
// predates the stages schema) it reports the skip and passes.
func checkStageRegress(cur *stageBreakdown, baseline *artifact, maxRegress float64, gomaxprocs int, stdout io.Writer) error {
	if baseline.Stages == nil {
		fmt.Fprintln(stdout, "stage baseline has no stages section; regression gate skipped")
		return nil
	}
	if baseline.GoMaxProcs != gomaxprocs {
		fmt.Fprintf(stdout, "stage baseline measured at GOMAXPROCS=%d, this host runs %d; regression gate skipped\n", baseline.GoMaxProcs, gomaxprocs)
		return nil
	}
	type key struct {
		stage   string
		threads int
	}
	base := make(map[key]float64, len(baseline.Stages.Rows))
	for _, r := range baseline.Stages.Rows {
		base[key{r.Stage, r.Threads}] = r.NsPerOp
	}
	var regressed []string
	for _, r := range cur.Rows {
		want, ok := base[key{r.Stage, r.Threads}]
		if !ok || want <= 0 {
			continue
		}
		if r.NsPerOp > want*(1+maxRegress) {
			regressed = append(regressed, fmt.Sprintf("%s at %d threads: %.0f ns/op vs baseline %.0f (+%.0f%%)",
				r.Stage, r.Threads, r.NsPerOp, want, 100*(r.NsPerOp/want-1)))
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("stage(s) regressed more than %.0f%% vs %s baseline:\n  %s",
			maxRegress*100, stageDataset, strings.Join(regressed, "\n  "))
	}
	return nil
}
