package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: nucleus/internal/localhi
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkSndTruss-8           	       2	 429884678 ns/op	        32.00 sweeps/op	     65110 updates/op	   6867840 work-visits/op	66911432 B/op	 3026762 allocs/op
BenchmarkSndTrussIndexed-8    	       2	  72195275 ns/op	        32.00 sweeps/op	     65110 updates/op	   6867840 work-visits/op	  329816 B/op	     330 allocs/op
BenchmarkSweepKernelFused-8   	       2	   2672216 ns/op	    214620 work-visits/op	       0 B/op	       0 allocs/op
BenchmarkSweepKernelGeneric-8 	       2	  14548084 ns/op	    214620 work-visits/op	 2080680 B/op	   94576 allocs/op
PASS
ok  	nucleus/internal/localhi	1.718s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(results))
	}
	base := find(results, "BenchmarkSndTruss")
	if base == nil {
		t.Fatal("BenchmarkSndTruss not found (P-suffix stripping broken?)")
	}
	if base.Iterations != 2 || base.NsPerOp != 429884678 {
		t.Fatalf("baseline parsed wrong: %+v", base)
	}
	if base.WorkVisitsPerOp == nil || *base.WorkVisitsPerOp != 6867840 {
		t.Fatalf("work-visits metric not parsed: %+v", base)
	}
	if base.SweepsPerOp == nil || *base.SweepsPerOp != 32 {
		t.Fatalf("sweeps convergence metric not parsed: %+v", base)
	}
	if base.UpdatesPerOp == nil || *base.UpdatesPerOp != 65110 {
		t.Fatalf("updates convergence metric not parsed: %+v", base)
	}
	fused := find(results, "BenchmarkSweepKernelFused")
	if fused.AllocsPerOp == nil || *fused.AllocsPerOp != 0 {
		t.Fatalf("fused allocs not parsed: %+v", fused)
	}
}

func TestBuildArtifactGates(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	art, err := buildArtifact(results, "./internal/localhi", 3)
	if err != nil {
		t.Fatalf("gates failed on healthy results: %v", err)
	}
	if art.SpeedupSndIndexed < 5 || art.SpeedupSndIndexed > 7 {
		t.Fatalf("speedup %.2f, want ~5.95", art.SpeedupSndIndexed)
	}
	if art.FusedSteadyStateAllocsPerOp != 0 {
		t.Fatalf("fused allocs %v, want 0", art.FusedSteadyStateAllocsPerOp)
	}

	// Nonzero fused allocs must fail the gate.
	dirty := strings.Replace(sampleOutput,
		"BenchmarkSweepKernelFused-8   	       2	   2672216 ns/op	    214620 work-visits/op	       0 B/op	       0 allocs/op",
		"BenchmarkSweepKernelFused-8   	       2	   2672216 ns/op	    214620 work-visits/op	      64 B/op	       3 allocs/op", 1)
	results, _ = parseBench(strings.NewReader(dirty))
	if _, err := buildArtifact(results, "p", 0); err == nil {
		t.Fatal("nonzero fused allocs passed the gate")
	}

	// A missing fused benchmark must fail too.
	var noFused []benchResult
	for _, r := range results {
		if r.Name != "BenchmarkSweepKernelFused" {
			noFused = append(noFused, r)
		}
	}
	if _, err := buildArtifact(noFused, "p", 0); err == nil {
		t.Fatal("missing fused benchmark passed the gate")
	}

	// Speedup below the floor must fail when the gate is armed.
	if _, err := buildArtifact(parseOK(t, sampleOutput), "p", 100); err == nil {
		t.Fatal("speedup gate did not fire at min-speedup=100")
	}
}

const sampleParallelOutput = `goos: linux
goarch: amd64
pkg: nucleus/internal/peel
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkPeelScalingTruss/workers=1-8         	       5	   8000000 ns/op	       0 B/op	       0 allocs/op
BenchmarkPeelScalingTruss/workers=2-8         	       5	   4400000 ns/op	       0 B/op	       0 allocs/op
BenchmarkPeelScalingTruss/workers=4-8         	       5	   2500000 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	nucleus/internal/peel	2.031s
`

func TestParseBenchSubBenchmarks(t *testing.T) {
	results := parseOK(t, sampleParallelOutput)
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	// The -P suffix must be stripped from sub-benchmark names too.
	r := find(results, "BenchmarkPeelScalingTruss/workers=4")
	if r == nil || r.NsPerOp != 2500000 {
		t.Fatalf("workers=4 row parsed wrong: %+v", r)
	}
}

func TestParseCounts(t *testing.T) {
	ws, err := parseCounts("-workers", "1, 2,4")
	if err != nil || len(ws) != 3 || ws[0] != 1 || ws[2] != 4 {
		t.Fatalf("parseCounts = %v, %v", ws, err)
	}
	for _, bad := range []string{"", "0", "1,x", "-2"} {
		if _, err := parseCounts("-workers", bad); err == nil {
			t.Fatalf("parseCounts(%q) accepted", bad)
		}
	}
}

func TestBuildParallel(t *testing.T) {
	results := parseOK(t, sampleParallelOutput)
	ws := []int{1, 2, 4}

	sec, err := buildParallel(results, ws, 2, 8)
	if err != nil {
		t.Fatalf("gate failed on healthy scaling: %v", err)
	}
	if len(sec.Rows) != 3 || sec.Rows[1].Workers != 2 {
		t.Fatalf("rows = %+v", sec.Rows)
	}
	if sec.SpeedupAt4 < 3.1 || sec.SpeedupAt4 > 3.3 {
		t.Fatalf("speedupAt4 = %.2f, want 3.2", sec.SpeedupAt4)
	}
	if sec.GoMaxProcsLimited || sec.Note != "" {
		t.Fatalf("flagged limited on an 8-proc host: %+v", sec)
	}

	// Below the floor on a capable host: gate fires.
	if _, err := buildParallel(results, ws, 10, 8); err == nil {
		t.Fatal("parallel speedup gate did not fire at min=10")
	}

	// Same numbers on a 1-proc host: rows recorded, gate skipped.
	sec, err = buildParallel(results, ws, 10, 1)
	if err != nil {
		t.Fatalf("gate fired on a GOMAXPROCS-limited host: %v", err)
	}
	if !sec.GoMaxProcsLimited || sec.Note == "" {
		t.Fatalf("limited host not flagged: %+v", sec)
	}

	// A missing worker row is an error regardless of gating.
	if _, err := buildParallel(results, []int{1, 2, 4, 8}, 0, 8); err == nil {
		t.Fatal("missing workers=8 row passed")
	}

	// Gate armed but workers=4 not swept: explicit error, not silent pass.
	if _, err := buildParallel(results, []int{1, 2}, 2, 8); err == nil {
		t.Fatal("min-parallel-speedup with no workers=4 row passed")
	}
}

func parseOK(t *testing.T, s string) []benchResult {
	t.Helper()
	results, err := parseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return results
}
