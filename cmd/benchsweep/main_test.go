package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: nucleus/internal/localhi
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkSndTruss-8           	       2	 429884678 ns/op	        32.00 sweeps/op	     65110 updates/op	   6867840 work-visits/op	66911432 B/op	 3026762 allocs/op
BenchmarkSndTrussIndexed-8    	       2	  72195275 ns/op	        32.00 sweeps/op	     65110 updates/op	   6867840 work-visits/op	  329816 B/op	     330 allocs/op
BenchmarkSweepKernelFused-8   	       2	   2672216 ns/op	    214620 work-visits/op	       0 B/op	       0 allocs/op
BenchmarkSweepKernelGeneric-8 	       2	  14548084 ns/op	    214620 work-visits/op	 2080680 B/op	   94576 allocs/op
PASS
ok  	nucleus/internal/localhi	1.718s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(results))
	}
	base := find(results, "BenchmarkSndTruss")
	if base == nil {
		t.Fatal("BenchmarkSndTruss not found (P-suffix stripping broken?)")
	}
	if base.Iterations != 2 || base.NsPerOp != 429884678 {
		t.Fatalf("baseline parsed wrong: %+v", base)
	}
	if base.WorkVisitsPerOp == nil || *base.WorkVisitsPerOp != 6867840 {
		t.Fatalf("work-visits metric not parsed: %+v", base)
	}
	if base.SweepsPerOp == nil || *base.SweepsPerOp != 32 {
		t.Fatalf("sweeps convergence metric not parsed: %+v", base)
	}
	if base.UpdatesPerOp == nil || *base.UpdatesPerOp != 65110 {
		t.Fatalf("updates convergence metric not parsed: %+v", base)
	}
	fused := find(results, "BenchmarkSweepKernelFused")
	if fused.AllocsPerOp == nil || *fused.AllocsPerOp != 0 {
		t.Fatalf("fused allocs not parsed: %+v", fused)
	}
}

func TestBuildArtifactGates(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	art, err := buildArtifact(results, "./internal/localhi", 3)
	if err != nil {
		t.Fatalf("gates failed on healthy results: %v", err)
	}
	if art.SpeedupSndIndexed < 5 || art.SpeedupSndIndexed > 7 {
		t.Fatalf("speedup %.2f, want ~5.95", art.SpeedupSndIndexed)
	}
	if art.FusedSteadyStateAllocsPerOp != 0 {
		t.Fatalf("fused allocs %v, want 0", art.FusedSteadyStateAllocsPerOp)
	}

	// Nonzero fused allocs must fail the gate.
	dirty := strings.Replace(sampleOutput,
		"BenchmarkSweepKernelFused-8   	       2	   2672216 ns/op	    214620 work-visits/op	       0 B/op	       0 allocs/op",
		"BenchmarkSweepKernelFused-8   	       2	   2672216 ns/op	    214620 work-visits/op	      64 B/op	       3 allocs/op", 1)
	results, _ = parseBench(strings.NewReader(dirty))
	if _, err := buildArtifact(results, "p", 0); err == nil {
		t.Fatal("nonzero fused allocs passed the gate")
	}

	// A missing fused benchmark must fail too.
	var noFused []benchResult
	for _, r := range results {
		if r.Name != "BenchmarkSweepKernelFused" {
			noFused = append(noFused, r)
		}
	}
	if _, err := buildArtifact(noFused, "p", 0); err == nil {
		t.Fatal("missing fused benchmark passed the gate")
	}

	// Speedup below the floor must fail when the gate is armed.
	if _, err := buildArtifact(parseOK(t, sampleOutput), "p", 100); err == nil {
		t.Fatal("speedup gate did not fire at min-speedup=100")
	}
}

func parseOK(t *testing.T, s string) []benchResult {
	t.Helper()
	results, err := parseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return results
}
