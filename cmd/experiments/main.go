// Command experiments regenerates the paper's tables and figures on the
// synthetic dataset registry. Run with no flags to execute everything, or
// select one experiment:
//
//	experiments -exp fig1a      # truss convergence (Kendall-Tau vs iteration)
//	experiments -exp fig1b      # scalability (modeled speedup vs threads)
//	experiments -exp table3     # dataset statistics
//	experiments -exp table4     # iterations to convergence, SND vs AND
//	experiments -exp table5     # runtimes, peeling vs SND vs AND
//	experiments -exp plateaus   # tau trajectories (Figure 5)
//	experiments -exp bound      # Theorem 3 degree-level bound
//	experiments -exp tradeoff   # accuracy/runtime trade-off
//	experiments -exp query      # query-driven estimation
//	experiments -exp order      # AND processing-order ablation
//	experiments -exp sched      # static vs dynamic scheduling ablation
//	experiments -exp density    # density of discovered subgraphs
//	experiments -exp fig2       # the paper's Figure 2 walk-through
//
// The -dec flag selects the decomposition (core, truss, 34) where
// applicable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nucleus/internal/dataset"
	"nucleus/internal/experiments"
	"nucleus/internal/graph"
	"nucleus/internal/localhi"
	"nucleus/internal/nucleus"
)

// allExperiments is the default execution order.
var allExperiments = []string{
	"table3", "fig2", "fig1a", "fig1b", "table4", "table5",
	"plateaus", "bound", "tradeoff", "query", "order", "sched", "density",
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (see command doc; 'all' runs everything)")
	dec := flag.String("dec", "truss", "decomposition (core, truss, 34)")
	flag.Parse()

	if err := run(*exp, *dec, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
}

func run(exp, dec string, w io.Writer) error {
	var d experiments.Dec
	switch dec {
	case "core":
		d = experiments.Core
	case "truss":
		d = experiments.Truss
	case "34":
		d = experiments.N34
	default:
		return fmt.Errorf("unknown decomposition %q", dec)
	}
	if exp == "all" {
		for _, name := range allExperiments {
			if err := runOne(name, d, w); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(exp, d, w)
}

func runOne(name string, d experiments.Dec, w io.Writer) error {
	// The (3,4) instance is the most expensive (as in the paper); restrict
	// it to the datasets flagged affordable.
	keysFor := func(d experiments.Dec) []string {
		if d == experiments.N34 {
			var keys []string
			for _, ds := range dataset.Small34() {
				keys = append(keys, ds.Key)
			}
			return keys
		}
		return dataset.Keys()
	}
	threads := []int{1, 4, 6, 12, 24}

	switch name {
	case "fig1a":
		experiments.Fig1aConvergence(w, d, experiments.Fig1aKeys, 0)
	case "fig1b":
		experiments.Fig1bScalability(w, d, experiments.Fig1bKeys, threads[1:])
	case "table3":
		experiments.Table3(w, dataset.Keys())
	case "table4":
		experiments.Table4Iterations(w, d, keysFor(d))
	case "table5":
		experiments.Table5Runtimes(w, d, keysFor(d))
	case "plateaus":
		experiments.Plateaus(w, d, "fb", 8)
		fmt.Fprintln(w)
		experiments.PlateauStats(w, d, keysFor(d))
	case "bound":
		experiments.Bound(w, d, boundKeys(d))
	case "tradeoff":
		experiments.Tradeoff(w, d, "fb")
	case "query":
		experiments.Query(w, "hg", 64, []int{0, 1, 2, 3, 4}, 1)
	case "order":
		experiments.OrderAblation(w, d, keysFor(d), 1)
	case "sched":
		experiments.SchedulingAblation(w, d, "fb", threads)
	case "density":
		experiments.DensityQuality(w, "fb", 8)
		fmt.Fprintln(w)
		experiments.DensityQuality(w, "tw", 8)
	case "fig2":
		figure2Walkthrough(w)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	fmt.Fprintln(w)
	return nil
}

// boundKeys limits the degree-level computation (quadratic scan per level)
// to moderate datasets.
func boundKeys(d experiments.Dec) []string {
	if d == experiments.N34 {
		return []string{"fb", "tw"}
	}
	return []string{"fb", "tw", "sse", "wn"}
}

// figure2Walkthrough replays the paper's Figure 2 toy example, printing the
// τ sequence of SND and of AND under two orders.
func figure2Walkthrough(w io.Writer) {
	g := graph.Figure2()
	names := graph.Figure2Vertices
	inst := nucleus.NewCore(g)
	fmt.Fprintln(w, "# Figure 2 walk-through: k-core on the toy graph")
	fmt.Fprintf(w, "%-18s", "vertex")
	for _, n := range names {
		fmt.Fprintf(w, "%4s", n)
	}
	fmt.Fprintln(w)
	printRow := func(label string, vals []int32) {
		fmt.Fprintf(w, "%-18s", label)
		for _, v := range vals {
			fmt.Fprintf(w, "%4d", v)
		}
		fmt.Fprintln(w)
	}
	printRow("degrees (tau0)", inst.Degrees())
	localhi.Snd(inst, localhi.Options{OnSweep: func(s int, tau []int32) {
		printRow(fmt.Sprintf("SND tau%d", s), tau)
	}})
	res := localhi.And(inst, localhi.Options{Order: []int32{5, 4, 0, 1, 2, 3}})
	printRow("AND {f,e,a,b,c,d}", res.Tau)
	fmt.Fprintf(w, "AND with the kappa-ordered {f,e,a,b,c,d} order converged in %d iteration(s) (Theorem 4)\n", res.Iterations)
}
