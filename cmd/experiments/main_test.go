package main

import (
	"strings"
	"testing"

	"nucleus/internal/experiments"
)

func TestRunFig2(t *testing.T) {
	var sb strings.Builder
	if err := run("fig2", "core", &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The exact Figure 2 values from the paper.
	if !strings.Contains(out, "degrees (tau0)       2   3   2   2   2   1") {
		t.Fatalf("wrong tau0 row: %q", out)
	}
	if !strings.Contains(out, "SND tau1             2   2   2   2   1   1") {
		t.Fatalf("wrong tau1 row: %q", out)
	}
	if !strings.Contains(out, "SND tau2             1   2   2   2   1   1") {
		t.Fatalf("wrong tau2 row: %q", out)
	}
	if !strings.Contains(out, "converged in 1 iteration(s)") {
		t.Fatalf("missing Theorem 4 line: %q", out)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run("fig2", "bogus", &sb); err == nil {
		t.Error("no error for bad decomposition")
	}
	if err := run("bogus", "core", &sb); err == nil {
		t.Error("no error for bad experiment")
	}
}

func TestRunOneCheapExperiments(t *testing.T) {
	// Exercise the cheap drivers end to end on the core decomposition.
	for _, name := range []string{"sched", "fig2"} {
		var sb strings.Builder
		if err := runOne(name, experiments.Core, &sb); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sb.Len() == 0 {
			t.Fatalf("%s: empty output", name)
		}
	}
}

func TestBoundKeys(t *testing.T) {
	if len(boundKeys(experiments.N34)) >= len(boundKeys(experiments.Core)) {
		t.Error("(3,4) bound keys should be the smaller set")
	}
}
