package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	root "nucleus"
)

// replPair spins a durable primary at generation gen and a replica
// pulling from it (manual pulls only), both behind httptest.
func replPair(t *testing.T, gen uint64) (primary, replica *httptest.Server) {
	t.Helper()
	node := func(role, primaryURL string) *httptest.Server {
		st, err := root.OpenFSStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		srv := root.NewServer(root.ServerConfig{
			Workers: 1,
			Store:   st,
			Replication: root.ReplicationConfig{
				Role:         role,
				Primary:      primaryURL,
				Generation:   gen,
				PullInterval: -1, // pulls only via POST /replication/pull
			},
		})
		ts := httptest.NewServer(srv)
		t.Cleanup(func() {
			ts.Close()
			srv.Close()
		})
		return ts
	}
	primary = node(root.RolePrimary, "")
	resp, err := http.Post(primary.URL+"/graphs/g", "text/plain", strings.NewReader("0 1\n1 2\n0 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	replica = node(root.RoleReplica, primary.URL)
	return primary, replica
}

func TestReplStatusAndPull(t *testing.T) {
	primary, replica := replPair(t, 3)

	var sb strings.Builder
	if err := run([]string{"repl", "status", "-server", primary.URL}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"role:        primary", "generation:  3", "(1 graphs)"} {
		if !strings.Contains(out, want) {
			t.Errorf("primary status missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "pulls:") {
		t.Errorf("primary status shows replica-only fields:\n%s", out)
	}

	// A pull catches the replica up; its status then reports the
	// primary URL, zero lag, and the shipped bytes.
	sb.Reset()
	if err := run([]string{"repl", "pull", "-server", replica.URL}, &sb); err != nil {
		t.Fatal(err)
	}
	out = sb.String()
	for _, want := range []string{"ok: pull", "role:        replica", "lag:         0 versions", "primary:     " + primary.URL} {
		if !strings.Contains(out, want) {
			t.Errorf("pull output missing %q:\n%s", want, out)
		}
	}
}

func TestReplPromoteAndRepoint(t *testing.T) {
	primary, replica := replPair(t, 1)
	var sb strings.Builder
	if err := run([]string{"repl", "pull", "-server", replica.URL}, &sb); err != nil {
		t.Fatal(err)
	}

	// Promote demands an explicit generation.
	if err := run([]string{"repl", "promote", "-server", replica.URL}, &sb); err == nil ||
		!strings.Contains(err.Error(), "-generation is required") {
		t.Fatalf("promote without -generation: err = %v", err)
	}
	// Same-generation promote is refused by the node; the CLI surfaces it.
	if err := run([]string{"repl", "promote", "-server", replica.URL, "-generation", "1"}, &sb); err == nil {
		t.Fatal("promote at current generation succeeded; want node refusal")
	}

	sb.Reset()
	if err := run([]string{"repl", "promote", "-server", replica.URL, "-generation", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"ok: promote", "role:        primary", "generation:  2"} {
		if !strings.Contains(out, want) {
			t.Errorf("promote output missing %q:\n%s", want, out)
		}
	}

	// Repoint demands -primary; repointing the old primary at the new
	// one is refused (it still claims the primary role).
	if err := run([]string{"repl", "repoint", "-server", primary.URL}, &sb); err == nil ||
		!strings.Contains(err.Error(), "-primary is required") {
		t.Fatalf("repoint without -primary: err = %v", err)
	}
	if err := run([]string{"repl", "repoint", "-server", primary.URL, "-primary", replica.URL, "-generation", "2"}, &sb); err == nil {
		t.Fatal("repoint of a node claiming the primary role succeeded; want refusal")
	}
}

func TestReplUsageErrors(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{{"repl"}, {"repl", "bogus"}} {
		if err := run(args, &sb); err == nil || !strings.Contains(err.Error(), "usage:") {
			t.Errorf("run(%v): err = %v, want usage error", args, err)
		}
	}
	if err := run([]string{"repl", "status", "-server", "http://127.0.0.1:1"}, &sb); err == nil {
		t.Error("status against a dead server succeeded")
	}
}
