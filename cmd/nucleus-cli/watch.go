package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// runWatch handles the `watch` subcommand: it attaches to a nucleusd
// job's anytime progress stream (GET /jobs/{id}/stream, server-sent
// events) and prints one line per sweep until the job finishes. With
// -graph it first submits a fresh job and then watches it, so
//
//	nucleus-cli watch -server http://localhost:8080 -graph web -dec truss
//
// is a complete submit-and-follow loop; with -job it attaches to an
// already-running job.
func runWatch(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("nucleus-cli watch", flag.ContinueOnError)
	var (
		server    = fs.String("server", "http://localhost:8080", "nucleusd base URL")
		jobID     = fs.String("job", "", "existing job id to watch")
		graphName = fs.String("graph", "", "graph name: submit a new job on it, then watch")
		decName   = fs.String("dec", "core", "decomposition for -graph: core, truss, n34")
		algName   = fs.String("alg", "and", "algorithm for -graph: and, snd")
		threads   = fs.Int("threads", 0, "job threads for -graph (0 = server default)")
		maxSweeps = fs.Int("max-sweeps", 0, "sweep budget for -graph (0 = to convergence)")
		tenant    = fs.String("tenant", "", "tenant name for -graph, sent as the X-Nucleus-Tenant header (empty = the server's default tenant)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*jobID == "") == (*graphName == "") {
		return fmt.Errorf("watch: exactly one of -job or -graph is required")
	}
	base := strings.TrimRight(*server, "/")

	id := *jobID
	if *graphName != "" {
		var err error
		if id, err = submitJob(base, *graphName, *decName, *algName, *tenant, *threads, *maxSweeps); err != nil {
			return err
		}
		fmt.Fprintf(w, "submitted job %s (%s %s on %q)\n", id, *algName, *decName, *graphName)
	}

	resp, err := http.Get(base + "/jobs/" + id + "/stream")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("watch: %s", readError(resp))
	}
	return printStream(resp.Body, w)
}

// submitJob posts a decomposition job and returns its id. tenant, when
// non-empty, is sent as the X-Nucleus-Tenant header so the server's
// scheduler accounts the job (and its quotas) to that tenant.
func submitJob(base, graph, dec, alg, tenant string, threads, maxSweeps int) (string, error) {
	body, _ := json.Marshal(map[string]any{
		"graph": graph, "decomposition": dec, "algorithm": alg,
		"threads": threads, "maxSweeps": maxSweeps,
	})
	req, err := http.NewRequest("POST", base+"/jobs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Nucleus-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submitting job: %s", readError(resp))
	}
	var v struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return "", err
	}
	return v.ID, nil
}

// readError extracts the server's {"error": ...} message, falling back
// to the HTTP status.
func readError(resp *http.Response) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
		return e.Error
	}
	return resp.Status
}

// watchSnapshot mirrors the server's progress snapshot JSON.
type watchSnapshot struct {
	Sweep          int     `json:"sweep"`
	Cells          int     `json:"cells"`
	MaxTau         int32   `json:"maxTau"`
	Updates        int64   `json:"updates"`
	UpdateRate     float64 `json:"updateRate"`
	FractionStable float64 `json:"fractionStable"`
	Converged      bool    `json:"converged"`
	ElapsedMs      float64 `json:"elapsedMs"`
}

// watchDone mirrors the SSE done-event payload.
type watchDone struct {
	State       string         `json:"state"`
	Error       string         `json:"error"`
	Approximate bool           `json:"approximate"`
	Snapshot    *watchSnapshot `json:"snapshot"`
}

// printStream renders the SSE feed: one line per progress event, a
// summary line for the done event.
func printStream(body io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "progress":
				var s watchSnapshot
				if err := json.Unmarshal([]byte(data), &s); err != nil {
					return fmt.Errorf("bad progress event %q: %w", data, err)
				}
				fmt.Fprintf(w, "sweep %4d  max-tau %5d  updates %9d  stable %6.2f%%  %8s\n",
					s.Sweep, s.MaxTau, s.Updates, 100*s.FractionStable,
					(time.Duration(s.ElapsedMs * float64(time.Millisecond))).Round(time.Millisecond))
			case "done":
				var d watchDone
				if err := json.Unmarshal([]byte(data), &d); err != nil {
					return fmt.Errorf("bad done event %q: %w", data, err)
				}
				if d.State != "done" {
					// A failed or cancelled job must fail the command so
					// scripted callers do not mistake it for success.
					if d.Error != "" {
						return fmt.Errorf("job %s: %s", d.State, d.Error)
					}
					return fmt.Errorf("job ended %s", d.State)
				}
				if d.Error != "" {
					fmt.Fprintf(w, "job %s: %s\n", d.State, d.Error)
				} else if d.Snapshot != nil {
					kind := "exact (tau = kappa certified)"
					if d.Approximate {
						kind = "approximate (tau >= kappa)"
					}
					fmt.Fprintf(w, "job %s after %d sweeps in %s: max-tau %d, %s\n",
						d.State, d.Snapshot.Sweep,
						(time.Duration(d.Snapshot.ElapsedMs * float64(time.Millisecond))).Round(time.Millisecond),
						d.Snapshot.MaxTau, kind)
				} else {
					fmt.Fprintf(w, "job %s\n", d.State)
				}
				return nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading stream: %w", err)
	}
	return fmt.Errorf("stream ended without a done event")
}
