package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	root "nucleus"
)

// watchServer spins a nucleusd instance with an uploaded path graph (a
// slow-converging SND fixture) behind httptest.
func watchServer(t *testing.T, n int) *httptest.Server {
	t.Helper()
	srv := root.NewServer(root.ServerConfig{Workers: 1})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	var sb strings.Builder
	for i := 0; i < n-1; i++ {
		fmt.Fprintf(&sb, "%d %d\n", i, i+1)
	}
	resp, err := http.Post(ts.URL+"/graphs/p", "text/plain", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	return ts
}

func TestWatchSubmitAndFollow(t *testing.T) {
	ts := watchServer(t, 801)
	var sb strings.Builder
	if err := run([]string{"watch", "-server", ts.URL, "-graph", "p", "-dec", "core", "-alg", "snd"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "submitted job ") {
		t.Fatalf("missing submit line: %q", out)
	}
	if !strings.Contains(out, "job done") || !strings.Contains(out, "exact (tau = kappa certified)") {
		t.Fatalf("missing terminal summary: %q", out)
	}
	// The path graph's max τ is 2 until the endpoint influence meets in
	// the middle; the exact max core number is 1.
	if !strings.Contains(out, "max-tau 1,") {
		t.Fatalf("final max-tau not 1: %q", out)
	}
}

func TestWatchExistingJobAndErrors(t *testing.T) {
	ts := watchServer(t, 801)
	// Unknown job id surfaces the server error.
	if err := run([]string{"watch", "-server", ts.URL, "-job", "zzz"}, &strings.Builder{}); err == nil {
		t.Fatal("watching an unknown job succeeded")
	}
	// -job and -graph are mutually exclusive (and one is required).
	if err := run([]string{"watch", "-server", ts.URL}, &strings.Builder{}); err == nil {
		t.Fatal("watch without -job/-graph succeeded")
	}
}

func TestWatchServerUnreachable(t *testing.T) {
	// A server that no longer exists: the URL is valid but nothing
	// listens behind it, for both the attach and the submit paths.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	if err := run([]string{"watch", "-server", dead.URL, "-job", "j1"}, &strings.Builder{}); err == nil {
		t.Fatal("watching via a dead server succeeded")
	}
	if err := run([]string{"watch", "-server", dead.URL, "-graph", "p"}, &strings.Builder{}); err == nil {
		t.Fatal("submitting via a dead server succeeded")
	}
}

func TestWatchSubmitUnknownGraph(t *testing.T) {
	ts := watchServer(t, 801)
	err := run([]string{"watch", "-server", ts.URL, "-graph", "no-such-graph"}, &strings.Builder{})
	if err == nil {
		t.Fatal("submitting a job on an unknown graph succeeded")
	}
	if !strings.Contains(err.Error(), "submitting job") {
		t.Fatalf("error does not name the submit step: %v", err)
	}
}

// sseServer serves a canned byte stream on /jobs/j1/stream, so the
// mid-run failure modes (connection cut before the done event, malformed
// event payloads) are reproducible without racing a real job.
func sseServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/jobs/j1/stream" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestWatchStreamClosedMidRun(t *testing.T) {
	// Two progress events, then the server ends the stream without ever
	// sending a done event (crash, restart, proxy timeout): the command
	// must fail rather than report a silently truncated run.
	ts := sseServer(t,
		"event: progress\ndata: {\"sweep\":1,\"maxTau\":3}\n\n"+
			"event: progress\ndata: {\"sweep\":2,\"maxTau\":2}\n\n")
	var sb strings.Builder
	err := run([]string{"watch", "-server", ts.URL, "-job", "j1"}, &sb)
	if err == nil {
		t.Fatal("truncated stream reported success")
	}
	if !strings.Contains(err.Error(), "stream ended without a done event") {
		t.Fatalf("unexpected error for truncated stream: %v", err)
	}
	// The sweeps seen before the cut were still rendered.
	if !strings.Contains(sb.String(), "sweep    1") || !strings.Contains(sb.String(), "sweep    2") {
		t.Fatalf("progress before the cut not printed: %q", sb.String())
	}
}

func TestWatchMalformedEvents(t *testing.T) {
	badProgress := sseServer(t, "event: progress\ndata: {not json}\n\n")
	if err := run([]string{"watch", "-server", badProgress.URL, "-job", "j1"}, &strings.Builder{}); err == nil ||
		!strings.Contains(err.Error(), "bad progress event") {
		t.Fatalf("malformed progress event not rejected: %v", err)
	}

	badDone := sseServer(t, "event: done\ndata: {not json}\n\n")
	if err := run([]string{"watch", "-server", badDone.URL, "-job", "j1"}, &strings.Builder{}); err == nil ||
		!strings.Contains(err.Error(), "bad done event") {
		t.Fatalf("malformed done event not rejected: %v", err)
	}
}

func TestWatchFailedJobDoneEvent(t *testing.T) {
	// A done event in a non-done state must fail the command so scripted
	// callers do not mistake a cancelled or failed job for success.
	ts := sseServer(t, "event: done\ndata: {\"state\":\"failed\",\"error\":\"graph evicted\"}\n\n")
	err := run([]string{"watch", "-server", ts.URL, "-job", "j1"}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "graph evicted") {
		t.Fatalf("failed job not surfaced: %v", err)
	}
}
