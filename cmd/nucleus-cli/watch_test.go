package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	root "nucleus"
)

// watchServer spins a nucleusd instance with an uploaded path graph (a
// slow-converging SND fixture) behind httptest.
func watchServer(t *testing.T, n int) *httptest.Server {
	t.Helper()
	srv := root.NewServer(root.ServerConfig{Workers: 1})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	var sb strings.Builder
	for i := 0; i < n-1; i++ {
		fmt.Fprintf(&sb, "%d %d\n", i, i+1)
	}
	resp, err := http.Post(ts.URL+"/graphs/p", "text/plain", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	return ts
}

func TestWatchSubmitAndFollow(t *testing.T) {
	ts := watchServer(t, 801)
	var sb strings.Builder
	if err := run([]string{"watch", "-server", ts.URL, "-graph", "p", "-dec", "core", "-alg", "snd"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "submitted job ") {
		t.Fatalf("missing submit line: %q", out)
	}
	if !strings.Contains(out, "job done") || !strings.Contains(out, "exact (tau = kappa certified)") {
		t.Fatalf("missing terminal summary: %q", out)
	}
	// The path graph's max τ is 2 until the endpoint influence meets in
	// the middle; the exact max core number is 1.
	if !strings.Contains(out, "max-tau 1,") {
		t.Fatalf("final max-tau not 1: %q", out)
	}
}

func TestWatchExistingJobAndErrors(t *testing.T) {
	ts := watchServer(t, 801)
	// Unknown job id surfaces the server error.
	if err := run([]string{"watch", "-server", ts.URL, "-job", "zzz"}, &strings.Builder{}); err == nil {
		t.Fatal("watching an unknown job succeeded")
	}
	// -job and -graph are mutually exclusive (and one is required).
	if err := run([]string{"watch", "-server", ts.URL}, &strings.Builder{}); err == nil {
		t.Fatal("watch without -job/-graph succeeded")
	}
}
