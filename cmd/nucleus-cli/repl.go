package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// runRepl handles the `repl` subcommand family: fleet operations
// against a node's /replication endpoints (docs/REPLICATION.md).
//
//	nucleus-cli repl status  -server http://replica:8081
//	nucleus-cli repl pull    -server http://replica:8081
//	nucleus-cli repl promote -server http://replica:8081 -generation 2
//	nucleus-cli repl repoint -server http://replica:8081 -primary http://new:8080 -generation 2
//
// `status` is read-only; the rest are the manual steps of the promotion
// runbook, for when no nucleus-router is driving failover.
func runRepl(args []string, w io.Writer) error {
	const usage = "usage: nucleus-cli repl <status|pull|promote|repoint> [flags]"
	if len(args) == 0 {
		return fmt.Errorf(usage)
	}
	verb := args[0]
	fs := flag.NewFlagSet("nucleus-cli repl "+verb, flag.ContinueOnError)
	var (
		server     = fs.String("server", "http://localhost:8080", "nucleusd base URL")
		generation = fs.Uint64("generation", 0, "cluster generation (promote: required; repoint: optional)")
		primary    = fs.String("primary", "", "new primary base URL (repoint)")
	)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	base := strings.TrimRight(*server, "/")

	switch verb {
	case "status":
		return replStatus(base, w)
	case "pull":
		return replPost(base, "/replication/pull", nil, w)
	case "promote":
		if *generation == 0 {
			return fmt.Errorf("repl promote: -generation is required and must exceed the node's current generation")
		}
		return replPost(base, "/replication/promote", map[string]any{"generation": *generation}, w)
	case "repoint":
		if *primary == "" {
			return fmt.Errorf("repl repoint: -primary is required")
		}
		body := map[string]any{"primary": strings.TrimRight(*primary, "/")}
		if *generation > 0 {
			body["generation"] = *generation
		}
		return replPost(base, "/replication/repoint", body, w)
	default:
		return fmt.Errorf(usage)
	}
}

// nodeStatusDoc mirrors the GET /replication/status document.
type nodeStatusDoc struct {
	Role               string  `json:"role"`
	Generation         uint64  `json:"generation"`
	MaxVersion         uint64  `json:"maxVersion"`
	Graphs             int     `json:"graphs"`
	Primary            string  `json:"primary"`
	LagVersions        int64   `json:"lagVersions"`
	LagMs              float64 `json:"lagMs"`
	Pulls              int64   `json:"pulls"`
	PullErrors         int64   `json:"pullErrors"`
	StalePulls         int64   `json:"stalePulls"`
	BytesPulled        int64   `json:"bytesPulled"`
	SnapshotsInstalled int64   `json:"snapshotsInstalled"`
	BatchesApplied     int64   `json:"batchesApplied"`
	DuplicatesSkipped  int64   `json:"duplicatesSkipped"`
	LastError          string  `json:"lastError"`
}

func replStatus(base string, w io.Writer) error {
	resp, err := http.Get(base + "/replication/status")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl status: %s", readError(resp))
	}
	var st nodeStatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	printNodeStatus(w, &st)
	return nil
}

func printNodeStatus(w io.Writer, st *nodeStatusDoc) {
	fmt.Fprintf(w, "role:        %s\n", st.Role)
	fmt.Fprintf(w, "generation:  %d\n", st.Generation)
	fmt.Fprintf(w, "max version: %d (%d graphs)\n", st.MaxVersion, st.Graphs)
	if st.Role != "replica" {
		return
	}
	fmt.Fprintf(w, "primary:     %s\n", st.Primary)
	fmt.Fprintf(w, "lag:         %d versions", st.LagVersions)
	if st.LagVersions > 0 {
		fmt.Fprintf(w, " (behind for %.0fms)", st.LagMs)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "pulls:       %d (%d errors, %d stale), %d bytes shipped\n",
		st.Pulls, st.PullErrors, st.StalePulls, st.BytesPulled)
	fmt.Fprintf(w, "applied:     %d batches, %d snapshots, %d duplicates skipped\n",
		st.BatchesApplied, st.SnapshotsInstalled, st.DuplicatesSkipped)
	if st.LastError != "" {
		fmt.Fprintf(w, "last error:  %s\n", st.LastError)
	}
}

// replPost drives one mutation of the replication state and prints the
// node's resulting status document.
func replPost(base, path string, body any, w io.Writer) error {
	var payload io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		payload = bytes.NewReader(data)
	}
	resp, err := http.Post(base+path, "application/json", payload)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl %s: %s", strings.TrimPrefix(path, "/replication/"), readError(resp))
	}
	var st nodeStatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	fmt.Fprintf(w, "ok: %s\n", strings.TrimPrefix(path, "/replication/"))
	printNodeStatus(w, &st)
	return nil
}
