// Command nucleus-cli decomposes a graph from an edge-list file and prints
// the κ histogram and, optionally, the nucleus hierarchy.
//
//	nucleus-cli -graph g.txt -dec truss -alg and -threads 4
//	nucleus-cli -graph g.txt -dec core -hierarchy -min-cells 10
//	nucleus-cli -graph g.txt -r 2 -s 4            # generic (r,s) via hypergraph
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	root "nucleus"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("nucleus-cli", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "edge-list file (required)")
		decName   = fs.String("dec", "core", "decomposition: core, truss, 34")
		algName   = fs.String("alg", "and", "algorithm: peel, snd, and")
		threads   = fs.Int("threads", 1, "worker threads for local algorithms")
		maxSweeps = fs.Int("max-sweeps", 0, "iteration budget (0 = to convergence)")
		hier      = fs.Bool("hierarchy", false, "print the nucleus hierarchy")
		minCells  = fs.Int("min-cells", 1, "hide hierarchy nodes smaller than this")
		dot       = fs.Bool("dot", false, "print the hierarchy as GraphViz DOT instead of text")
		rFlag     = fs.Int("r", 0, "generic r (with -s; overrides -dec)")
		sFlag     = fs.Int("s", 0, "generic s (with -r; overrides -dec)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	g, err := root.LoadEdgeList(*graphPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "loaded graph: n=%d m=%d\n", g.N(), g.M())

	var alg root.Algorithm
	switch *algName {
	case "peel":
		alg = root.Peel
	case "snd":
		alg = root.SND
	case "and":
		alg = root.AND
	default:
		return fmt.Errorf("unknown algorithm %q", *algName)
	}
	opts := root.Options{Algorithm: alg, Threads: *threads, MaxSweeps: *maxSweeps}

	start := time.Now()
	var res *root.Result
	var dec root.Decomposition
	if *rFlag > 0 && *sFlag > 0 {
		res = root.DecomposeRS(g, *rFlag, *sFlag, opts)
		fmt.Fprintf(w, "generic (%d,%d) decomposition", *rFlag, *sFlag)
	} else {
		switch *decName {
		case "core":
			dec = root.KCore
		case "truss":
			dec = root.KTruss
		case "34":
			dec = root.Nucleus34
		default:
			return fmt.Errorf("unknown decomposition %q", *decName)
		}
		res = root.Decompose(g, dec, opts)
		fmt.Fprintf(w, "%v decomposition", dec)
	}
	fmt.Fprintf(w, " via %v: %d cells, max kappa %d, %v\n",
		alg, len(res.Kappa), res.MaxKappa, time.Since(start).Round(time.Millisecond))
	if !res.Converged {
		fmt.Fprintf(w, "stopped after %d sweeps (approximation: tau >= kappa)\n", res.Sweeps)
	} else if alg != root.Peel {
		fmt.Fprintf(w, "converged in %d iterations (%d sweeps)\n", res.Iterations, res.Sweeps)
	}

	fmt.Fprintln(w, "kappa histogram (k: cells):")
	for k, c := range res.Histogram() {
		if c > 0 {
			fmt.Fprintf(w, "  %4d: %d\n", k, c)
		}
	}

	if *hier || *dot {
		if *rFlag > 0 {
			return fmt.Errorf("hierarchy printing is not supported for generic (r,s)")
		}
		f := root.BuildHierarchy(g, dec, res.Kappa)
		if *dot {
			return f.WriteDOT(w, g, *minCells)
		}
		fmt.Fprintf(w, "hierarchy: %d nuclei\n", f.NumNodes())
		f.Print(w, g, *minCells)
	}
	return nil
}
