// Command nucleus-cli decomposes a graph from an edge-list file and prints
// the κ histogram and, optionally, the nucleus hierarchy. It also inspects
// nucleusd's durable snapshot files and follows the anytime progress of
// nucleusd jobs over SSE.
//
//	nucleus-cli -graph g.txt -dec truss -alg and -threads 4
//	nucleus-cli -graph g.txt -dec core -hierarchy -min-cells 10
//	nucleus-cli -graph g.txt -r 2 -s 4            # generic (r,s) via hypergraph
//	nucleus-cli snapshot inspect <data-dir>/graphs/<name>/snapshot.nsnap
//	nucleus-cli watch -server http://localhost:8080 -graph web -dec truss
//	nucleus-cli watch -server http://localhost:8080 -job j42
//	nucleus-cli repl status -server http://replica:8081
//	nucleus-cli repl promote -server http://replica:8081 -generation 2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	root "nucleus"

	"nucleus/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) > 0 && args[0] == "snapshot" {
		return runSnapshot(args[1:], w)
	}
	if len(args) > 0 && args[0] == "watch" {
		return runWatch(args[1:], w)
	}
	if len(args) > 0 && args[0] == "repl" {
		return runRepl(args[1:], w)
	}
	fs := flag.NewFlagSet("nucleus-cli", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "edge-list file (required)")
		decName   = fs.String("dec", "core", "decomposition: core, truss, 34")
		algName   = fs.String("alg", "and", "algorithm: peel, snd, and")
		threads   = fs.Int("threads", 1, "worker threads for local algorithms")
		maxSweeps = fs.Int("max-sweeps", 0, "iteration budget (0 = to convergence)")
		hier      = fs.Bool("hierarchy", false, "print the nucleus hierarchy")
		minCells  = fs.Int("min-cells", 1, "hide hierarchy nodes smaller than this")
		dot       = fs.Bool("dot", false, "print the hierarchy as GraphViz DOT instead of text")
		rFlag     = fs.Int("r", 0, "generic r (with -s; overrides -dec)")
		sFlag     = fs.Int("s", 0, "generic s (with -r; overrides -dec)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	g, err := root.LoadEdgeList(*graphPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "loaded graph: n=%d m=%d\n", g.N(), g.M())

	var alg root.Algorithm
	switch *algName {
	case "peel":
		alg = root.Peel
	case "snd":
		alg = root.SND
	case "and":
		alg = root.AND
	default:
		return fmt.Errorf("unknown algorithm %q", *algName)
	}
	opts := root.Options{Algorithm: alg, Threads: *threads, MaxSweeps: *maxSweeps}

	start := time.Now()
	var res *root.Result
	var dec root.Decomposition
	if *rFlag > 0 && *sFlag > 0 {
		res = root.DecomposeRS(g, *rFlag, *sFlag, opts)
		fmt.Fprintf(w, "generic (%d,%d) decomposition", *rFlag, *sFlag)
	} else {
		switch *decName {
		case "core":
			dec = root.KCore
		case "truss":
			dec = root.KTruss
		case "34":
			dec = root.Nucleus34
		default:
			return fmt.Errorf("unknown decomposition %q", *decName)
		}
		res = root.Decompose(g, dec, opts)
		fmt.Fprintf(w, "%v decomposition", dec)
	}
	fmt.Fprintf(w, " via %v: %d cells, max kappa %d, %v\n",
		alg, len(res.Kappa), res.MaxKappa, time.Since(start).Round(time.Millisecond))
	if !res.Converged {
		fmt.Fprintf(w, "stopped after %d sweeps (approximation: tau >= kappa)\n", res.Sweeps)
	} else if alg != root.Peel {
		fmt.Fprintf(w, "converged in %d iterations (%d sweeps)\n", res.Iterations, res.Sweeps)
	}

	fmt.Fprintln(w, "kappa histogram (k: cells):")
	for k, c := range res.Histogram() {
		if c > 0 {
			fmt.Fprintf(w, "  %4d: %d\n", k, c)
		}
	}

	if *hier || *dot {
		if *rFlag > 0 {
			return fmt.Errorf("hierarchy printing is not supported for generic (r,s)")
		}
		f := root.BuildHierarchy(g, dec, res.Kappa)
		if *dot {
			return f.WriteDOT(w, g, *minCells)
		}
		fmt.Fprintf(w, "hierarchy: %d nuclei\n", f.NumNodes())
		f.Print(w, g, *minCells)
	}
	return nil
}

// runSnapshot handles the `snapshot` subcommand family. `inspect` fully
// decodes each file — so a clean report also certifies the checksum — and
// prints the header, metadata and κ summary.
func runSnapshot(args []string, w io.Writer) error {
	const usage = "usage: nucleus-cli snapshot inspect <snapshot.nsnap>..."
	if len(args) == 0 || args[0] != "inspect" {
		return fmt.Errorf(usage)
	}
	files := args[1:]
	if len(files) == 0 {
		return fmt.Errorf(usage)
	}
	for _, path := range files {
		info, err := store.InspectSnapshot(path)
		if err != nil {
			return fmt.Errorf("inspecting %s: %w", path, err)
		}
		fmt.Fprintf(w, "%s: format v%d, %d bytes, checksum OK\n", info.Path, info.FormatVersion, info.FileBytes)
		fmt.Fprintf(w, "  graph:    n=%d m=%d (%.2f bytes/edge encoded)\n", info.N, info.M, bytesPerEdge(info.FileBytes, info.M))
		fmt.Fprintf(w, "  version:  %d (%d mutation batches)\n", info.Version, info.Mutations)
		fmt.Fprintf(w, "  source:   %s\n", info.Source)
		fmt.Fprintf(w, "  created:  %s\n", info.CreatedAt.UTC().Format(time.RFC3339Nano))
		if info.HasKappa {
			fmt.Fprintf(w, "  kappa:    present (max core number %d; recovery warm-starts)\n", info.MaxKappa)
		} else {
			fmt.Fprintf(w, "  kappa:    absent (recovery decomposes on demand)\n")
		}
	}
	return nil
}

func bytesPerEdge(fileBytes int64, m int64) float64 {
	if m == 0 {
		return 0
	}
	return float64(fileBytes) / float64(m)
}
