package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nucleus/internal/graph"
	"nucleus/internal/store"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	g := graph.Figure2()
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := g.SaveEdgeList(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCore(t *testing.T) {
	path := writeTestGraph(t)
	var sb strings.Builder
	if err := run([]string{"-graph", path, "-dec", "core", "-alg", "snd"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "n=6 m=6") {
		t.Fatalf("missing graph line: %q", out)
	}
	if !strings.Contains(out, "converged in 2 iterations") {
		t.Fatalf("missing convergence line: %q", out)
	}
	if !strings.Contains(out, "1: 3") || !strings.Contains(out, "2: 3") {
		t.Fatalf("missing histogram: %q", out)
	}
}

func TestRunAllDecompositionsAndAlgorithms(t *testing.T) {
	path := writeTestGraph(t)
	for _, dec := range []string{"core", "truss", "34"} {
		for _, alg := range []string{"peel", "snd", "and"} {
			var sb strings.Builder
			if err := run([]string{"-graph", path, "-dec", dec, "-alg", alg}, &sb); err != nil {
				t.Fatalf("%s/%s: %v", dec, alg, err)
			}
		}
	}
}

func TestRunHierarchy(t *testing.T) {
	path := writeTestGraph(t)
	var sb strings.Builder
	if err := run([]string{"-graph", path, "-hierarchy"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "hierarchy: 2 nuclei") {
		t.Fatalf("missing hierarchy: %q", sb.String())
	}
}

func TestRunDOT(t *testing.T) {
	path := writeTestGraph(t)
	var sb strings.Builder
	if err := run([]string{"-graph", path, "-dot"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph nuclei {") {
		t.Fatalf("missing DOT: %q", sb.String())
	}
}

func TestRunGenericRS(t *testing.T) {
	path := writeTestGraph(t)
	var sb strings.Builder
	if err := run([]string{"-graph", path, "-r", "1", "-s", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "generic (1,3)") {
		t.Fatalf("missing generic output: %q", sb.String())
	}
	// Hierarchy not supported for generic.
	if err := run([]string{"-graph", path, "-r", "1", "-s", "3", "-hierarchy"}, &sb); err == nil {
		t.Fatal("expected error for generic hierarchy")
	}
}

func TestRunBudget(t *testing.T) {
	path := writeTestGraph(t)
	var sb strings.Builder
	if err := run([]string{"-graph", path, "-alg", "snd", "-max-sweeps", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "stopped after 1 sweeps") {
		t.Fatalf("missing budget line: %q", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestGraph(t)
	cases := [][]string{
		{},
		{"-graph", "/does/not/exist"},
		{"-graph", path, "-alg", "bogus"},
		{"-graph", path, "-dec", "bogus"},
		{"-bogus-flag"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("no error for %v", args)
		}
	}
	// Suppress flag usage noise in test output.
	_ = os.Stderr
}

func TestSnapshotInspect(t *testing.T) {
	g := graph.Figure2()
	kappa := []int32{2, 2, 2, 1, 1, 0}[:g.N()]
	path := filepath.Join(t.TempDir(), "snapshot.nsnap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	snap := &store.Snapshot{
		Meta:  store.Meta{Version: 42, Source: "upload:edgelist", CreatedAt: time.Unix(0, 1234), Mutations: 3},
		Graph: g,
		Kappa: kappa,
	}
	if err := store.EncodeSnapshot(f, snap); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := run([]string{"snapshot", "inspect", path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"checksum OK",
		"n=6 m=6",
		"version:  42 (3 mutation batches)",
		"source:   upload:edgelist",
		"kappa:    present",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, out)
		}
	}

	// A corrupted snapshot must fail loudly, not print garbage.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	bad := filepath.Join(t.TempDir(), "bad.nsnap")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"snapshot", "inspect", bad}, &sb); err == nil {
		t.Fatal("inspect accepted a corrupted snapshot")
	}

	// Usage errors.
	if err := run([]string{"snapshot"}, &sb); err == nil {
		t.Fatal("bare snapshot subcommand must error with usage")
	}
	if err := run([]string{"snapshot", "inspect"}, &sb); err == nil {
		t.Fatal("inspect without files must error with usage")
	}
}
