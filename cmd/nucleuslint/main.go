// Command nucleuslint is the project's static gate: it fronts `go vet`
// and then runs the nucleus analyzer suite (noalloc, lockdiscipline,
// syncerr, atomicfield, ctxstop) over the requested packages, exiting
// nonzero if either stage reports anything.
//
// Usage:
//
//	nucleuslint [-vet=false] [-list] [packages...]
//
// Packages default to ./... relative to the current directory. Findings
// print as file:line:col: [analyzer] message. A finding is silenced only
// by fixing it or by a justified per-line suppression:
//
//	//nucleus:lint-ignore <analyzer> <why this is safe>
//
// Suppressions without a justification, and stale suppressions that no
// longer match a finding, are themselves findings — the gate cannot be
// waved through silently. See docs/DEVELOPMENT.md for the full analyzer
// reference.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"nucleus/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("nucleuslint", flag.ExitOnError)
	vet := fs.Bool("vet", true, "also run go vet over the packages")
	list := fs.Bool("list", false, "print the analyzer suite and exit")
	fs.Parse(args)

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "nucleuslint: go vet failed: %v\n", err)
			failed = true
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "nucleuslint: %v\n", err)
		return 2
	}
	prog, err := lint.Load(wd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nucleuslint: %v\n", err)
		return 2
	}
	diags, err := lint.Run(prog, lint.All(), lint.RunOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "nucleuslint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "nucleuslint: %d finding(s)\n", len(diags))
		failed = true
	}
	if failed {
		return 1
	}
	return 0
}
