// Command nucleus-router fronts a fleet of replicated nucleusd shard
// groups (docs/REPLICATION.md): it consistent-hashes graph names across
// groups, proxies mutations to each group's primary stamped with the
// group's cluster generation, fans reads out across the replicas, and
// keeps async job traffic sticky via node-suffixed job ids. A
// background health loop probes every primary and fails a dead one
// over to its most caught-up replica.
//
//	nucleus-router -addr :9000 \
//	  -group shard0=http://10.0.0.1:8080,http://10.0.0.2:8080 \
//	  -group shard1=http://10.0.1.1:8080,http://10.0.1.2:8080
//
// Each -group is name=primaryURL[,replicaURL...]. The router itself is
// stateless: restart it with the same -group topology and traffic
// resumes; generations are re-learned from the nodes on the first
// health sweep.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nucleus/internal/router"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nucleus-router", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":9000", "listen address")
		vnodes        = fs.Int("vnodes", 64, "virtual nodes per group on the hash ring")
		generation    = fs.Uint64("generation", 1, "starting cluster generation stamped on proxied writes")
		checkInterval = fs.Duration("check-interval", 2*time.Second, "fleet health probe cadence; 0 disables the background loop (POST /router/check still works)")
		proxyTimeout  = fs.Duration("proxy-timeout", 0, "per-request upstream timeout; 0 means unbounded (long decompose reads and SSE streams)")
		probeTimeout  = fs.Duration("probe-timeout", 2*time.Second, "health/status probe timeout")
	)
	var groups []router.GroupConfig
	fs.Func("group", "shard group as name=primaryURL[,replicaURL...] (repeatable)", func(v string) error {
		name, urls, ok := strings.Cut(v, "=")
		if !ok || name == "" || urls == "" {
			return fmt.Errorf("want name=primaryURL[,replicaURL...], got %q", v)
		}
		parts := strings.Split(urls, ",")
		groups = append(groups, router.GroupConfig{
			Name:     name,
			Primary:  strings.TrimSpace(parts[0]),
			Replicas: trimAll(parts[1:]),
		})
		return nil
	})
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if len(groups) == 0 {
		return errors.New("at least one -group is required")
	}
	if *vnodes <= 0 {
		return fmt.Errorf("-vnodes must be a positive integer (got %d)", *vnodes)
	}
	if *generation == 0 {
		return errors.New("-generation must be >= 1")
	}
	if *checkInterval < 0 || *proxyTimeout < 0 || *probeTimeout <= 0 {
		return errors.New("-check-interval and -proxy-timeout must be >= 0, -probe-timeout must be positive")
	}

	rt, err := router.New(router.Config{
		Groups:      groups,
		VNodes:      *vnodes,
		Generation:  *generation,
		Client:      &http.Client{Timeout: *proxyTimeout},
		ProbeClient: &http.Client{Timeout: *probeTimeout},
	})
	if err != nil {
		return err
	}
	if *checkInterval > 0 {
		go rt.Run(*checkInterval)
		defer rt.Stop()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: rt}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("nucleus-router listening on %s (%d groups, generation %d, check every %v)",
			*addr, len(groups), *generation, *checkInterval)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	return <-errCh
}

func trimAll(in []string) []string {
	var out []string
	for _, s := range in {
		if t := strings.TrimSpace(s); t != "" {
			out = append(out, t)
		}
	}
	return out
}
